#include "viz/timing_diagram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/strings.h"

namespace mintc::viz {

namespace {

// Map absolute time to a character column.
struct Axis {
  double t_end;
  int columns;

  int col(double t) const {
    const int c = static_cast<int>(std::floor(t / t_end * columns));
    return std::clamp(c, 0, columns - 1);
  }
};

void paint(std::string& row, const Axis& ax, double t0, double t1, char ch) {
  if (t1 <= t0) return;
  const int c0 = ax.col(t0);
  const int c1 = ax.col(t1 - 1e-12);
  for (int c = c0; c <= c1; ++c) row[static_cast<size_t>(c)] = ch;
}

std::string label_pad(const std::string& label, size_t width) {
  std::string out = label;
  if (out.size() > width) out.resize(width);
  out.append(width - out.size(), ' ');
  return out;
}

}  // namespace

std::string ascii_clock_diagram(const ClockSchedule& schedule, const DiagramOptions& options) {
  std::ostringstream out;
  const double horizon = schedule.cycle * options.cycles;
  if (horizon <= 0.0) return "(empty schedule)\n";
  const Axis ax{horizon, options.columns};
  const size_t lw = 10;

  for (int p = 1; p <= schedule.num_phases(); ++p) {
    std::string row(static_cast<size_t>(options.columns), '_');
    for (int cyc = 0; cyc < options.cycles + 1; ++cyc) {
      const double s = schedule.s(p) + cyc * schedule.cycle;
      paint(row, ax, std::min(s, horizon), std::min(s + schedule.T(p), horizon), '#');
    }
    out << label_pad("phi" + std::to_string(p), lw) << row << "\n";
  }
  // Time ruler: tick at every cycle boundary.
  std::string ruler(static_cast<size_t>(options.columns), ' ');
  for (int cyc = 0; cyc <= options.cycles; ++cyc) {
    const double t = cyc * schedule.cycle;
    if (t <= horizon) ruler[static_cast<size_t>(ax.col(std::min(t, horizon - 1e-9)))] = '^';
  }
  out << label_pad("", lw) << ruler << "\n";
  out << label_pad("", lw) << "Tc = " << fmt_time(schedule.cycle) << " (x" << options.cycles
      << " cycles shown)\n";
  return out.str();
}

std::string ascii_timing_diagram(const Circuit& circuit, const ClockSchedule& schedule,
                                 const std::vector<double>& departure,
                                 const DiagramOptions& options) {
  std::ostringstream out;
  out << ascii_clock_diagram(schedule, options);
  const double horizon = schedule.cycle * options.cycles;
  if (horizon <= 0.0) return out.str();
  const Axis ax{horizon, options.columns};
  const size_t lw = 10;

  for (int i = 0; i < circuit.num_elements(); ++i) {
    const Element& e = circuit.element(i);
    std::string row(static_cast<size_t>(options.columns), ' ');
    for (int cyc = 0; cyc < options.cycles + 1; ++cyc) {
      // Departure instant in absolute time: the phase start plus D_i.
      const double dep = schedule.s(e.phase) + departure[static_cast<size_t>(i)] +
                         cyc * schedule.cycle;
      if (dep > horizon) continue;
      // Waiting gap: from the enabling edge to the departure.
      paint(row, ax, schedule.s(e.phase) + cyc * schedule.cycle, dep, '.');
      // Latch (or clock-to-Q) propagation.
      paint(row, ax, dep, std::min(dep + e.dq, horizon), 'X');
      // Longest combinational fanout.
      double longest = 0.0;
      std::string block;
      for (const int pe : circuit.fanout(i)) {
        const CombPath& p = circuit.path(pe);
        if (p.delay > longest) {
          longest = p.delay;
          block = p.label;
        }
      }
      if (longest > 0.0) {
        paint(row, ax, dep + e.dq, std::min(dep + e.dq + longest, horizon), '=');
      }
      if (ax.col(dep) >= 0) row[static_cast<size_t>(ax.col(dep))] = '|';
    }
    out << label_pad(e.name, lw) << row << "\n";
  }
  out << label_pad("", lw)
      << "('.' wait, '|' departure, 'X' latch delay, '=' combinational)\n";
  return out.str();
}

std::string departure_summary(const Circuit& circuit, const std::vector<double>& departure) {
  std::ostringstream out;
  for (int i = 0; i < circuit.num_elements(); ++i) {
    if (i > 0) out << "  ";
    out << "D(" << circuit.element(i).name
        << ")=" << fmt_time(departure[static_cast<size_t>(i)]);
  }
  return out.str();
}

}  // namespace mintc::viz
