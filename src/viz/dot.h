// Graphviz DOT export of the circuit topology.
//
// Elements become nodes (latches as boxes, flip-flops as double boxes,
// colored by clock phase), combinational paths become edges labeled with
// their delays. An optional highlight set (e.g. the tight paths from
// opt::find_critical_segments) is drawn bold red — the visual version of
// the paper's "critical combinational delay segments".
#pragma once

#include <string>
#include <vector>

#include "model/circuit.h"

namespace mintc::viz {

struct DotOptions {
  std::vector<int> highlight_paths;  // CombPath indices drawn bold/red
  bool show_delays = true;
};

std::string dot_circuit(const Circuit& circuit, const DotOptions& options = {});

}  // namespace mintc::viz
