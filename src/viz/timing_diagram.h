// Timing-diagram rendering in the style of the paper's Fig. 6: clock
// waveforms over two complete cycles, plus one "strip" per latch showing
// when its data signal departs, the shaded latch propagation delay, the
// combinational block it feeds, and any waiting gap before the enabling
// clock edge.
//
// The paper: "The shaded portions in these strips represent propagation
// through the latches themselves (Δ_DQi), whereas gaps in the strips
// indicate signals that arrive earlier than (and must thus wait for) the
// enabling edge of the corresponding clock phase."
#pragma once

#include <string>
#include <vector>

#include "model/circuit.h"

namespace mintc::viz {

struct DiagramOptions {
  int columns = 96;  // character columns for the time axis
  int cycles = 2;    // how many clock cycles to draw
};

/// Clock waveforms only: one row per phase, '#' while active.
std::string ascii_clock_diagram(const ClockSchedule& schedule,
                                const DiagramOptions& options = {});

/// Full diagram: clock waveforms plus one strip per element. `departure`
/// must be the fixpoint departure times (e.g. MlpResult::departure).
/// Strip notation per element row, repeated each cycle:
///   '.' waiting for the enabling edge, 'X' latch Δ_DQ, '=' combinational
///   propagation of the longest fanout path, '|' the departure instant.
std::string ascii_timing_diagram(const Circuit& circuit, const ClockSchedule& schedule,
                                 const std::vector<double>& departure,
                                 const DiagramOptions& options = {});

/// One-line textual summary of departures ("D1=60 D2=90 ..."), matching how
/// the paper reports Fig. 6 numbers.
std::string departure_summary(const Circuit& circuit, const std::vector<double>& departure);

}  // namespace mintc::viz
