#include "netlist/netlist.h"

#include <gtest/gtest.h>

namespace mintc::netlist {
namespace {

TEST(Netlist, NetsAndLookup) {
  Netlist n("t", 2);
  const int a = n.add_net("a");
  const int b = n.add_net("b");
  EXPECT_EQ(n.num_nets(), 2);
  EXPECT_EQ(n.find_net("a"), std::optional<int>(a));
  EXPECT_EQ(n.find_net("b"), std::optional<int>(b));
  EXPECT_FALSE(n.find_net("zz").has_value());
  EXPECT_EQ(n.net_name(a), "a");
}

TEST(Netlist, GatesTrackFanout) {
  Netlist n("t", 2);
  const int a = n.add_net("a");
  const int b = n.add_net("b");
  const int c = n.add_net("c");
  const int d = n.add_net("d");
  n.add_gate("g1", GateType::kInv, {a}, b);
  n.add_gate("g2", GateType::kNand, {a, b}, c);
  n.add_gate("g3", GateType::kInv, {b}, d);
  EXPECT_EQ(n.fanout_count(a), 2);
  EXPECT_EQ(n.fanout_count(b), 2);
  EXPECT_EQ(n.fanout_count(c), 0);
}

TEST(Netlist, StorageReadsAndDrives) {
  Netlist n("t", 2);
  const int d = n.add_net("d");
  const int q = n.add_net("q");
  n.add_latch("L", 1, d, q, 0.5, 1.0);
  EXPECT_EQ(n.fanout_count(d), 1);
  ASSERT_EQ(n.storages().size(), 1u);
  EXPECT_EQ(n.storages()[0].kind, ElementKind::kLatch);
  n.add_flipflop("F", 2, d, q, 0.5, 1.0);  // q now has two drivers (L and F)
  EXPECT_FALSE(n.validate().empty());
}

TEST(NetlistValidate, CleanPasses) {
  Netlist n("t", 2);
  const int d = n.add_net("d");
  const int q = n.add_net("q");
  n.add_latch("L", 1, d, q, 0.5, 1.0);
  n.add_gate("g", GateType::kBuf, {q}, d);
  EXPECT_TRUE(n.validate().empty());
}

TEST(NetlistValidate, MultipleDriversCaught) {
  Netlist n("t", 1);
  const int a = n.add_net("a");
  const int b = n.add_net("b");
  const int q = n.add_net("q");
  n.add_latch("L", 1, a, q, 0.5, 1.0);
  n.add_gate("g1", GateType::kInv, {q}, b);
  n.add_gate("g2", GateType::kInv, {b}, b);  // b driven twice
  const auto p = n.validate();
  ASSERT_FALSE(p.empty());
  EXPECT_NE(p[0].find("multiple drivers"), std::string::npos);
}

TEST(NetlistValidate, ArityChecked) {
  Netlist n("t", 1);
  const int a = n.add_net("a");
  const int b = n.add_net("b");
  const int q = n.add_net("q");
  n.add_latch("L", 1, a, q, 0.5, 1.0);
  n.add_gate("bad", GateType::kInv, {q, a}, b);  // inv with 2 inputs
  EXPECT_FALSE(n.validate().empty());
}

TEST(NetlistValidate, NoStorageCaught) {
  Netlist n("t", 1);
  const int a = n.add_net("a");
  const int b = n.add_net("b");
  n.add_gate("g", GateType::kInv, {a}, b);
  EXPECT_FALSE(n.validate().empty());
}

TEST(DelayModel, MonotoneInFanout) {
  const DelayModel m;
  EXPECT_LT(m.gate_delay(GateType::kInv, 1), m.gate_delay(GateType::kInv, 4));
  EXPECT_GT(m.gate_delay(GateType::kXor, 1), m.gate_delay(GateType::kInv, 1));
  // Fanout 0 treated as 1 (output still drives something downstream).
  EXPECT_DOUBLE_EQ(m.gate_delay(GateType::kBuf, 0), m.gate_delay(GateType::kBuf, 1));
}

TEST(GateTypes, ArityTable) {
  EXPECT_EQ(gate_arity(GateType::kInv), 1);
  EXPECT_EQ(gate_arity(GateType::kXor), 2);
  EXPECT_EQ(gate_arity(GateType::kMux2), 3);
  EXPECT_EQ(gate_arity(GateType::kNand), 0);  // variadic
}

TEST(GateTypes, Names) {
  EXPECT_STREQ(to_string(GateType::kNand), "nand");
  EXPECT_STREQ(to_string(GateType::kAoi21), "aoi21");
}

}  // namespace
}  // namespace mintc::netlist
