#include "netlist/extract.h"

#include <gtest/gtest.h>

#include "opt/mlp.h"

namespace mintc::netlist {
namespace {

// Two latches with a 2-gate block between them:
//   L1.q -> inv -> nand(. , L1.q) -> L2.d,   L2.q -> buf -> L1.d.
Netlist small_netlist() {
  Netlist n("small", 2);
  const int d1 = n.add_net("d1");
  const int q1 = n.add_net("q1");
  const int d2 = n.add_net("d2");
  const int q2 = n.add_net("q2");
  const int w1 = n.add_net("w1");
  n.add_latch("L1", 1, d1, q1, 0.5, 1.0);
  n.add_latch("L2", 2, d2, q2, 0.5, 1.0);
  n.add_gate("i1", GateType::kInv, {q1}, w1);
  n.add_gate("n1", GateType::kNand, {w1, q1}, d2);
  n.add_gate("b1", GateType::kBuf, {q2}, d1);
  return n;
}

TEST(Extract, ElementsCarryOver) {
  const auto c = extract_timing_model(small_netlist());
  ASSERT_TRUE(c) << c.error().to_string();
  EXPECT_EQ(c->num_elements(), 2);
  EXPECT_EQ(c->element(0).name, "L1");
  EXPECT_EQ(c->element(0).phase, 1);
  EXPECT_DOUBLE_EQ(c->element(0).setup, 0.5);
  EXPECT_DOUBLE_EQ(c->element(0).dq, 1.0);
}

TEST(Extract, LongestAndShortestPathDelays) {
  const DelayModel m;
  const auto c = extract_timing_model(small_netlist(), m);
  ASSERT_TRUE(c);
  // L1 -> L2: two routes; the long one goes through the inverter.
  // inv drives w1 (fanout 1); nand drives d2 (fanout 1: the latch D pin).
  const double inv = m.gate_delay(GateType::kInv, 1);
  const double nand = m.gate_delay(GateType::kNand, 1);
  const CombPath* p12 = nullptr;
  const CombPath* p21 = nullptr;
  for (const CombPath& p : c->paths()) {
    if (c->element(p.from).name == "L1" && c->element(p.to).name == "L2") p12 = &p;
    if (c->element(p.from).name == "L2" && c->element(p.to).name == "L1") p21 = &p;
  }
  ASSERT_NE(p12, nullptr);
  ASSERT_NE(p21, nullptr);
  EXPECT_NEAR(p12->delay, inv + nand, 1e-12);
  // Short route: straight into the nand, scaled by min_scale.
  EXPECT_NEAR(p12->min_delay, nand * m.min_scale, 1e-12);
  EXPECT_NEAR(p21->delay, m.gate_delay(GateType::kBuf, 1), 1e-12);
}

TEST(Extract, DirectWireIsZeroDelayPath) {
  Netlist n("wire", 2);
  const int q1 = n.add_net("q1");
  const int d2 = n.add_net("d2");
  const int x = n.add_net("x");
  n.add_latch("A", 1, x, q1, 0.5, 1.0);
  n.add_latch("B", 2, q1, d2, 0.5, 1.0);  // B.d IS A.q
  n.add_gate("g", GateType::kBuf, {d2}, x);
  const auto c = extract_timing_model(n);
  ASSERT_TRUE(c);
  bool found = false;
  for (const CombPath& p : c->paths()) {
    if (c->element(p.from).name == "A" && c->element(p.to).name == "B") {
      EXPECT_DOUBLE_EQ(p.delay, 0.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Extract, CombinationalFeedbackRejected) {
  Netlist n("cyc", 1);
  const int a = n.add_net("a");
  const int b = n.add_net("b");
  const int q = n.add_net("q");
  const int d = n.add_net("d");
  n.add_latch("L", 1, d, q, 0.5, 1.0);
  n.add_gate("g1", GateType::kInv, {a}, b);
  n.add_gate("g2", GateType::kInv, {b}, a);  // gate loop, no storage break
  n.add_gate("g3", GateType::kNand, {q, a}, d);
  const auto c = extract_timing_model(n);
  ASSERT_FALSE(c);
  EXPECT_EQ(c.error().kind, ErrorKind::kInvalidCircuit);
  EXPECT_NE(c.error().message.find("combinational feedback"), std::string::npos);
}

TEST(Extract, InvalidNetlistRejected) {
  Netlist n("bad", 1);
  n.add_net("only");
  const auto c = extract_timing_model(n);
  ASSERT_FALSE(c);
  EXPECT_EQ(c.error().kind, ErrorKind::kInvalidCircuit);
}

TEST(Extract, SequentialFeedbackThroughStorageIsFine) {
  // The small netlist IS a sequential loop (L1 -> L2 -> L1); extraction must
  // accept it and the resulting circuit must optimize.
  const auto c = extract_timing_model(small_netlist());
  ASSERT_TRUE(c);
  const auto r = opt::minimize_cycle_time(*c);
  ASSERT_TRUE(r) << r.error().to_string();
  EXPECT_GT(r->min_cycle, 0.0);
}

TEST(Extract, UnconnectedStoragePairsGetNoPath) {
  Netlist n("sparse", 2);
  const int d1 = n.add_net("d1");
  const int q1 = n.add_net("q1");
  const int d2 = n.add_net("d2");
  const int q2 = n.add_net("q2");
  n.add_latch("A", 1, d1, q1, 0.5, 1.0);
  n.add_latch("B", 2, d2, q2, 0.5, 1.0);
  n.add_gate("g", GateType::kBuf, {q1}, d2);
  // q2 drives nothing; d1 undriven (primary input).
  const auto c = extract_timing_model(n);
  ASSERT_TRUE(c);
  EXPECT_EQ(c->num_paths(), 1);  // only A -> B
}

}  // namespace
}  // namespace mintc::netlist
