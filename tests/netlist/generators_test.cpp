#include "netlist/generators.h"

#include <gtest/gtest.h>

#include "netlist/extract.h"
#include "opt/mlp.h"
#include "sta/analysis.h"

namespace mintc::netlist {
namespace {

TEST(Generators, StructureMatchesConfig) {
  DatapathConfig cfg;
  cfg.bits = 4;
  cfg.stages = 3;
  const Netlist n = make_pipelined_datapath(cfg);
  EXPECT_EQ(n.storages().size(), 12u);  // bits * stages latches
  // Per stage: bits XORs + (bits-1) ANDs.
  EXPECT_EQ(n.gates().size(), static_cast<size_t>(3 * (4 + 3)));
  EXPECT_TRUE(n.validate().empty());
}

TEST(Generators, Deterministic) {
  DatapathConfig cfg;
  const Netlist a = make_pipelined_datapath(cfg);
  const Netlist b = make_pipelined_datapath(cfg);
  EXPECT_EQ(a.gates().size(), b.gates().size());
  EXPECT_EQ(a.num_nets(), b.num_nets());
  for (size_t i = 0; i < a.gates().size(); ++i) {
    EXPECT_EQ(a.gates()[i].name, b.gates()[i].name);
    EXPECT_EQ(a.gates()[i].output, b.gates()[i].output);
  }
}

TEST(Generators, ExtractsToValidCircuit) {
  DatapathConfig cfg;
  cfg.bits = 6;
  cfg.stages = 4;
  const auto circuit = extract_timing_model(make_pipelined_datapath(cfg));
  ASSERT_TRUE(circuit) << circuit.error().to_string();
  EXPECT_EQ(circuit->num_elements(), 24);
  EXPECT_TRUE(circuit->validate().empty());
  // Carry chain: the worst path into the last bit of the next stage must be
  // strictly longer than into bit 0 (ripple).
  double into_b0 = 0.0;
  double into_bLast = 0.0;
  for (const CombPath& p : circuit->paths()) {
    const std::string& dst = circuit->element(p.to).name;
    if (dst == "L_s1b0") into_b0 = std::max(into_b0, p.delay);
    if (dst == "L_s1b5") into_bLast = std::max(into_bLast, p.delay);
  }
  EXPECT_GT(into_bLast, into_b0 + 0.5);
}

TEST(Generators, OptimizesAtScale) {
  DatapathConfig cfg;
  cfg.bits = 8;
  cfg.stages = 6;
  const auto circuit = extract_timing_model(make_pipelined_datapath(cfg));
  ASSERT_TRUE(circuit);
  EXPECT_EQ(circuit->num_elements(), 48);
  const auto r = opt::minimize_cycle_time(*circuit);
  ASSERT_TRUE(r) << r.error().to_string();
  EXPECT_GT(r->min_cycle, 0.0);
  EXPECT_TRUE(opt::satisfies_p1(*circuit, r->schedule, r->departure, 1e-5));
  EXPECT_TRUE(sta::check_schedule(*circuit, r->schedule).feasible);
  EXPECT_FALSE(sta::check_schedule(*circuit, r->schedule.scaled(0.98)).feasible);
}

TEST(Generators, MultiPhaseVariant) {
  DatapathConfig cfg;
  cfg.bits = 3;
  cfg.stages = 6;
  cfg.num_phases = 3;
  const auto circuit = extract_timing_model(make_pipelined_datapath(cfg));
  ASSERT_TRUE(circuit);
  EXPECT_EQ(circuit->num_phases(), 3);
  const auto r = opt::minimize_cycle_time(*circuit);
  ASSERT_TRUE(r) << r.error().to_string();
  EXPECT_TRUE(sta::check_schedule(*circuit, r->schedule).feasible);
}

}  // namespace
}  // namespace mintc::netlist
