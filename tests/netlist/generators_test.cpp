#include "netlist/generators.h"

#include <gtest/gtest.h>

#include "graph/scc.h"
#include "model/timing_view.h"
#include "netlist/extract.h"
#include "opt/mlp.h"
#include "sta/analysis.h"
#include "sta/fixpoint.h"

namespace mintc::netlist {
namespace {

TEST(Generators, StructureMatchesConfig) {
  DatapathConfig cfg;
  cfg.bits = 4;
  cfg.stages = 3;
  const Netlist n = make_pipelined_datapath(cfg);
  EXPECT_EQ(n.storages().size(), 12u);  // bits * stages latches
  // Per stage: bits XORs + (bits-1) ANDs.
  EXPECT_EQ(n.gates().size(), static_cast<size_t>(3 * (4 + 3)));
  EXPECT_TRUE(n.validate().empty());
}

TEST(Generators, Deterministic) {
  DatapathConfig cfg;
  const Netlist a = make_pipelined_datapath(cfg);
  const Netlist b = make_pipelined_datapath(cfg);
  EXPECT_EQ(a.gates().size(), b.gates().size());
  EXPECT_EQ(a.num_nets(), b.num_nets());
  for (size_t i = 0; i < a.gates().size(); ++i) {
    EXPECT_EQ(a.gates()[i].name, b.gates()[i].name);
    EXPECT_EQ(a.gates()[i].output, b.gates()[i].output);
  }
}

TEST(Generators, ExtractsToValidCircuit) {
  DatapathConfig cfg;
  cfg.bits = 6;
  cfg.stages = 4;
  const auto circuit = extract_timing_model(make_pipelined_datapath(cfg));
  ASSERT_TRUE(circuit) << circuit.error().to_string();
  EXPECT_EQ(circuit->num_elements(), 24);
  EXPECT_TRUE(circuit->validate().empty());
  // Carry chain: the worst path into the last bit of the next stage must be
  // strictly longer than into bit 0 (ripple).
  double into_b0 = 0.0;
  double into_bLast = 0.0;
  for (const CombPath& p : circuit->paths()) {
    const std::string& dst = circuit->element(p.to).name;
    if (dst == "L_s1b0") into_b0 = std::max(into_b0, p.delay);
    if (dst == "L_s1b5") into_bLast = std::max(into_bLast, p.delay);
  }
  EXPECT_GT(into_bLast, into_b0 + 0.5);
}

TEST(Generators, OptimizesAtScale) {
  DatapathConfig cfg;
  cfg.bits = 8;
  cfg.stages = 6;
  const auto circuit = extract_timing_model(make_pipelined_datapath(cfg));
  ASSERT_TRUE(circuit);
  EXPECT_EQ(circuit->num_elements(), 48);
  const auto r = opt::minimize_cycle_time(*circuit);
  ASSERT_TRUE(r) << r.error().to_string();
  EXPECT_GT(r->min_cycle, 0.0);
  EXPECT_TRUE(opt::satisfies_p1(*circuit, r->schedule, r->departure, 1e-5));
  EXPECT_TRUE(sta::check_schedule(*circuit, r->schedule).feasible);
  EXPECT_FALSE(sta::check_schedule(*circuit, r->schedule.scaled(0.98)).feasible);
}

TEST(Generators, MultiPhaseVariant) {
  DatapathConfig cfg;
  cfg.bits = 3;
  cfg.stages = 6;
  cfg.num_phases = 3;
  const auto circuit = extract_timing_model(make_pipelined_datapath(cfg));
  ASSERT_TRUE(circuit);
  EXPECT_EQ(circuit->num_phases(), 3);
  const auto r = opt::minimize_cycle_time(*circuit);
  ASSERT_TRUE(r) << r.error().to_string();
  EXPECT_TRUE(sta::check_schedule(*circuit, r->schedule).feasible);
}

// ---------------------------------------------------------------------------
// Large-scale timing-graph generators (deep pipelines, meshes, SCC soups).
// Scaled-down configs here; the 10^5..10^6 shapes run in
// bench_parallel_fixpoint.
// ---------------------------------------------------------------------------

graph::SccResult sccs_of(const Circuit& c) {
  const TimingView view(c);
  return graph::strongly_connected_components(sta::latch_graph_of(view));
}

TEST(LargeGenerators, DeepPipelineShape) {
  DeepPipelineConfig cfg;
  cfg.depth = 20;
  cfg.width = 5;
  cfg.fanin = 2;
  cfg.num_phases = 2;
  const Circuit c = make_deep_pipeline(cfg);
  EXPECT_EQ(c.num_elements(), 100);
  // Every stage after the first contributes width * fanin edges; no ring.
  EXPECT_EQ(c.num_paths(), 19 * 5 * 2);
  EXPECT_TRUE(c.validate().empty());
  // Acyclic: all components trivial.
  const graph::SccResult scc = sccs_of(c);
  EXPECT_EQ(scc.num_components, c.num_elements());
  // Closing the ring makes the whole pipeline one component.
  cfg.ring = true;
  const graph::SccResult ring_scc = sccs_of(make_deep_pipeline(cfg));
  EXPECT_EQ(ring_scc.num_components, 1);
}

TEST(LargeGenerators, MeshShape) {
  MeshConfig cfg;
  cfg.rows = 8;
  cfg.cols = 6;
  const Circuit c = make_mesh(cfg);
  EXPECT_EQ(c.num_elements(), 48);
  // Right edges: rows * (cols-1); down edges: (rows-1) * cols.
  EXPECT_EQ(c.num_paths(), 8 * 5 + 7 * 6);
  EXPECT_TRUE(c.validate().empty());
  const graph::SccResult scc = sccs_of(c);
  EXPECT_EQ(scc.num_components, c.num_elements());  // DAG: all trivial
}

TEST(LargeGenerators, SccSoupShape) {
  SccSoupConfig cfg;
  cfg.num_sccs = 30;
  cfg.scc_size = 4;
  cfg.cross_edges = 50;
  const Circuit c = make_scc_soup(cfg);
  EXPECT_EQ(c.num_elements(), 120);
  EXPECT_EQ(c.num_paths(), 30 * 4 + 50);
  EXPECT_TRUE(c.validate().empty());
  const graph::SccResult scc = sccs_of(c);
  EXPECT_EQ(scc.num_components, 30);
  int nontrivial = 0;
  for (int s = 0; s < scc.num_components; ++s) {
    nontrivial += scc.nontrivial[static_cast<size_t>(s)] ? 1 : 0;
  }
  EXPECT_EQ(nontrivial, 30);  // cross edges go low->high ring, never merge
}

TEST(LargeGenerators, DeterministicAcrossCalls) {
  SccSoupConfig cfg;
  cfg.num_sccs = 10;
  cfg.scc_size = 3;
  cfg.cross_edges = 20;
  cfg.seed = 42;
  const Circuit a = make_scc_soup(cfg);
  const Circuit b = make_scc_soup(cfg);
  ASSERT_EQ(a.num_paths(), b.num_paths());
  for (int p = 0; p < a.num_paths(); ++p) {
    EXPECT_EQ(a.path(p).from, b.path(p).from);
    EXPECT_EQ(a.path(p).to, b.path(p).to);
  }
  cfg.seed = 43;
  const Circuit other = make_scc_soup(cfg);
  bool differs = other.num_paths() != a.num_paths();
  for (int p = 0; !differs && p < a.num_paths(); ++p) {
    differs = other.path(p).from != a.path(p).from ||
              other.path(p).to != a.path(p).to;
  }
  EXPECT_TRUE(differs);  // the seed actually feeds the topology
}

TEST(LargeGenerators, ConvergeUnderTheGeneratorSchedule) {
  // generator_schedule's Tc > k * (dq + delay) bound makes every loop's gain
  // strictly negative for all three families (see generators.h).
  DeepPipelineConfig pipe;
  pipe.depth = 30;
  pipe.width = 4;
  pipe.ring = true;
  MeshConfig mesh;
  mesh.rows = 10;
  mesh.cols = 10;
  SccSoupConfig soup;
  soup.num_sccs = 20;
  soup.scc_size = 5;
  soup.cross_edges = 40;
  const Circuit circuits[] = {make_deep_pipeline(pipe), make_mesh(mesh),
                              make_scc_soup(soup)};
  const double dq = pipe.dq;     // all three share the default timing params
  const double delay = pipe.delay;
  for (const Circuit& c : circuits) {
    const ClockSchedule sch = generator_schedule(c.num_phases(), dq, delay);
    const sta::TimingReport rep = sta::check_schedule(c, sch);
    EXPECT_TRUE(rep.converged) << c.name();
  }
}

}  // namespace
}  // namespace mintc::netlist
