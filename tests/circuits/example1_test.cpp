#include "circuits/example1.h"

#include <gtest/gtest.h>

#include "opt/mlp.h"
#include "sta/analysis.h"

namespace mintc::circuits {
namespace {

TEST(Example1, StructureMatchesFig5) {
  const Circuit c = example1(80.0);
  EXPECT_EQ(c.num_phases(), 2);
  EXPECT_EQ(c.num_elements(), 4);
  EXPECT_EQ(c.num_paths(), 4);
  EXPECT_EQ(c.element(0).phase, 1);
  EXPECT_EQ(c.element(1).phase, 2);
  EXPECT_EQ(c.element(2).phase, 1);
  EXPECT_EQ(c.element(3).phase, 2);
  for (const Element& e : c.elements()) {
    EXPECT_DOUBLE_EQ(e.setup, 10.0);
    EXPECT_DOUBLE_EQ(e.dq, 10.0);
  }
  EXPECT_TRUE(c.validate().empty());
}

TEST(Example1, LdPathIndexAndSweepParameter) {
  Circuit c = example1(0.0);
  EXPECT_EQ(c.path(example1_ld_path()).label, "Ld");
  c.set_path_delay(example1_ld_path(), 120.0);
  EXPECT_DOUBLE_EQ(c.path(example1_ld_path()).delay, 120.0);
}

TEST(Example1, ClosedFormSegments) {
  // Flat 80 until 20, then slope 1/2, then slope 1 after 100 (Fig. 7).
  EXPECT_DOUBLE_EQ(example1_optimal_tc(0.0), 80.0);
  EXPECT_DOUBLE_EQ(example1_optimal_tc(20.0), 80.0);
  EXPECT_DOUBLE_EQ(example1_optimal_tc(60.0), 100.0);
  EXPECT_DOUBLE_EQ(example1_optimal_tc(100.0), 120.0);
  EXPECT_DOUBLE_EQ(example1_optimal_tc(120.0), 140.0);
}

TEST(Example1, KMatrixIsTwoPhaseLoop) {
  const KMatrix k = example1(80.0).k_matrix();
  EXPECT_TRUE(k.at(1, 2));
  EXPECT_TRUE(k.at(2, 1));
  EXPECT_EQ(k.num_pairs(), 2);
}

TEST(Example1, PublishedDeparturesAtDelta120) {
  // Fig. 6(c): Tc = 140 with signals departing latches 1-4 at 60, 90, 140,
  // and 210 ns in absolute time, and "the input to latch 3 becomes valid at
  // 120 ns, 20 ns earlier than the rising edge of phi1; thus departure from
  // latch 3 must wait until phi1 rises at 140 ns". The published schedule
  // shape is phi1 = [0, 70), phi2 = [70, 130); analyzing it reproduces the
  // figure's departure times exactly.
  const Circuit c = example1(120.0);
  const auto r = opt::minimize_cycle_time(c);
  ASSERT_TRUE(r);
  EXPECT_NEAR(r->min_cycle, 140.0, 1e-6);

  const ClockSchedule paper_schedule(140.0, {0.0, 70.0}, {70.0, 60.0});
  const sta::TimingReport rep = sta::check_schedule(c, paper_schedule);
  ASSERT_TRUE(rep.feasible);  // the published schedule achieves Tc* = 140
  // Relative departures (60, 20, 0, 0) -> absolute (60, 90, 140, 210),
  // L3/L4 drawn in the following cycle.
  EXPECT_NEAR(paper_schedule.s(1) + rep.elements[0].departure, 60.0, 1e-6);
  EXPECT_NEAR(paper_schedule.s(2) + rep.elements[1].departure, 90.0, 1e-6);
  EXPECT_NEAR(paper_schedule.s(1) + rep.elements[2].departure + 140.0, 140.0, 1e-6);
  EXPECT_NEAR(paper_schedule.s(2) + rep.elements[3].departure + 140.0, 210.0, 1e-6);
  // The 20 ns early arrival at L3: arrival = -20 relative to phi1.
  EXPECT_NEAR(rep.elements[2].arrival, -20.0, 1e-6);
}

}  // namespace
}  // namespace mintc::circuits
