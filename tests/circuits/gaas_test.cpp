#include "circuits/gaas.h"

#include <gtest/gtest.h>

#include "opt/mlp.h"
#include "sta/analysis.h"

namespace mintc::circuits {
namespace {

TEST(Gaas, PublishedInventory) {
  // "18 synchronizing elements, 15 of which are level-sensitive latches",
  // three-phase clock.
  const Circuit c = gaas_datapath();
  EXPECT_EQ(c.num_phases(), 3);
  EXPECT_EQ(c.num_elements(), 18);
  int latches = 0;
  int ffs = 0;
  for (const Element& e : c.elements()) {
    (e.is_latch() ? latches : ffs) += 1;
  }
  EXPECT_EQ(latches, 15);
  EXPECT_EQ(ffs, 3);
  EXPECT_TRUE(c.validate().empty());
}

TEST(Gaas, NinetyOneConstraints) {
  const opt::GeneratedLp g = opt::generate_lp(gaas_datapath());
  EXPECT_EQ(g.counts.rows(), 91);
}

TEST(Gaas, OptimalCycleTimeIs4p4) {
  // "The optimal cycle time found by MLP (4.4 ns) is 10% higher than the
  // target cycle time of 4 ns."
  const auto r = opt::minimize_cycle_time(gaas_datapath());
  ASSERT_TRUE(r) << r.error().to_string();
  EXPECT_NEAR(r->min_cycle, kGaasPaperOptimalTc, 1e-6);
  EXPECT_NEAR(r->min_cycle / kGaasTargetTc, 1.10, 1e-6);
}

TEST(Gaas, K13AndK31AreZero) {
  // "there are no direct paths in the circuit between these two phases
  // (i.e., K13 = K31 = 0)".
  const KMatrix k = gaas_datapath().k_matrix();
  EXPECT_FALSE(k.at(1, 3));
  EXPECT_FALSE(k.at(3, 1));
  // The pairs that do exist.
  EXPECT_TRUE(k.at(1, 2));
  EXPECT_TRUE(k.at(2, 1));
  EXPECT_TRUE(k.at(2, 3));
  EXPECT_TRUE(k.at(3, 2));
}

TEST(Gaas, Phi3CompletelyOverlappedByPhi1) {
  // Fig. 11: the min-duty refinement pins phi3 against the cycle boundary;
  // stretching phi1 back to the origin (verified feasible) exhibits the
  // published schedule shape: phi3's active interval lies entirely inside
  // phi1's.
  const Circuit c = gaas_datapath();
  const auto base = opt::minimize_cycle_time(c);
  ASSERT_TRUE(base);
  const auto refined =
      opt::refine_schedule(c, base->min_cycle, opt::SecondaryObjective::kMinTotalWidth);
  ASSERT_TRUE(refined);
  ClockSchedule sch = refined->schedule;
  sch.width[0] += sch.start[0];
  sch.start[0] = 0.0;
  ASSERT_TRUE(sta::check_schedule(c, sch).feasible);
  // phi3 modulo Tc must sit inside phi1 = [0, T1).
  const double tc = sch.cycle;
  const double s3 = sch.s(3) - tc;      // wraps: s3 == Tc at the refinement
  const double e3 = sch.phase_end(3) - tc;
  EXPECT_GE(s3, sch.s(1) - 1e-7);
  EXPECT_LE(e3, sch.phase_end(1) + 1e-7);
  EXPECT_LE(sch.T(3), sch.T(1));
}

TEST(Gaas, DesignVerifiesAndIsTight) {
  const Circuit c = gaas_datapath();
  const auto r = opt::minimize_cycle_time(c);
  ASSERT_TRUE(r);
  EXPECT_TRUE(sta::check_schedule(c, r->schedule).feasible);
  EXPECT_FALSE(sta::check_schedule(c, r->schedule.scaled(0.99)).feasible);
  EXPECT_TRUE(opt::satisfies_p1(c, r->schedule, r->departure, 1e-5));
}

TEST(Gaas, MaxFaninWithinPaperBound) {
  // Section IV: F "is usually a small number"; the bound 4k+(F+1)l must
  // accommodate the 91 rows.
  const Circuit c = gaas_datapath();
  const int f = c.max_fanin();
  EXPECT_LE(f, 7);
  EXPECT_LE(91, 4 * c.num_phases() + (f + 1) * c.num_elements());
}

TEST(Gaas, TransistorTableMatchesTableI) {
  const auto& t = gaas_transistor_table();
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t[0].block, "Register File (RF)");
  EXPECT_EQ(t[0].transistors, 16085);
  EXPECT_EQ(t[1].transistors, 3419);
  EXPECT_EQ(t[2].transistors, 1848);
  EXPECT_EQ(t[3].transistors, 6874);
  EXPECT_EQ(t[4].transistors, 1922);
  EXPECT_EQ(t[5].block, "Total");
  EXPECT_EQ(t[5].transistors, 30148);
  // Table I consistency: parts sum to the total.
  int sum = 0;
  for (size_t i = 0; i + 1 < t.size(); ++i) sum += t[i].transistors;
  EXPECT_EQ(sum, t.back().transistors);
}

TEST(Gaas, SolverCostIsInteractive) {
  // "its execution time ... was hardly noticeable (on the order of a few
  // seconds)" on a 1989 DECstation; here the simplex pivot count must stay
  // tiny (exact wall time is bench_fig11's job).
  const auto r = opt::minimize_cycle_time(gaas_datapath());
  ASSERT_TRUE(r);
  EXPECT_LT(r->lp_stats.phase1_pivots + r->lp_stats.phase2_pivots, 2000);
}

}  // namespace
}  // namespace mintc::circuits
