#include "circuits/appendix_fig1.h"

#include <gtest/gtest.h>

#include "opt/constraints.h"
#include "opt/mlp.h"
#include "sta/analysis.h"

namespace mintc::circuits {
namespace {

TEST(Appendix, ElevenLatchesFourPhases) {
  const Circuit c = appendix_fig1();
  EXPECT_EQ(c.num_phases(), 4);
  EXPECT_EQ(c.num_elements(), 11);
  EXPECT_TRUE(c.validate().empty());
}

TEST(Appendix, LatchPhasesMatchSetupConstraints) {
  // From the Appendix: T1 covers latches 1,2,8; T2: 6,7,11; T3: 4,5,10;
  // T4: 3,9.
  const Circuit c = appendix_fig1();
  const auto phase_of = [&](const std::string& n) {
    return c.element(*c.find_element(n)).phase;
  };
  for (const char* n : {"L1", "L2", "L8"}) EXPECT_EQ(phase_of(n), 1) << n;
  for (const char* n : {"L6", "L7", "L11"}) EXPECT_EQ(phase_of(n), 2) << n;
  for (const char* n : {"L4", "L5", "L10"}) EXPECT_EQ(phase_of(n), 3) << n;
  for (const char* n : {"L3", "L9"}) EXPECT_EQ(phase_of(n), 4) << n;
}

TEST(Appendix, KMatrixMatchesPaper) {
  const KMatrix computed = appendix_fig1().k_matrix();
  const KMatrix paper = appendix_fig1_k_matrix();
  for (int i = 1; i <= 4; ++i) {
    for (int j = 1; j <= 4; ++j) {
      EXPECT_EQ(computed.at(i, j), paper.at(i, j)) << "K(" << i << "," << j << ")";
    }
  }
  // "Thus there are nine I/O phase pairs".
  EXPECT_EQ(computed.num_pairs(), 9);
}

TEST(Appendix, NineNonoverlapRows) {
  const opt::GeneratedLp g = opt::generate_lp(appendix_fig1());
  EXPECT_EQ(g.counts.c3, 9);
  // Periodicity 2k = 8, ordering k-1 = 3, setup l = 11.
  EXPECT_EQ(g.counts.c1, 8);
  EXPECT_EQ(g.counts.c2, 3);
  EXPECT_EQ(g.counts.l1, 11);
  // One propagation row per path: the 18 Appendix fanin terms plus the
  // reconstructed 9->10 (see header).
  EXPECT_EQ(g.counts.l2r, 19);
}

TEST(Appendix, LatchOneIsPrimaryInput) {
  // D1 has no propagation constraint in the paper: no fanin.
  const Circuit c = appendix_fig1();
  EXPECT_TRUE(c.fanin(*c.find_element("L1")).empty());
}

TEST(Appendix, PropagationFaninsMatchPaper) {
  // Spot-check the max-term sources of a few departure equations.
  const Circuit c = appendix_fig1();
  const auto fanin_names = [&](const std::string& n) {
    std::vector<std::string> out;
    for (const int p : c.fanin(*c.find_element(n))) {
      out.push_back(c.element(c.path(p).from).name);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(fanin_names("L2"), (std::vector<std::string>{"L4", "L5"}));
  EXPECT_EQ(fanin_names("L3"), (std::vector<std::string>{"L8"}));
  EXPECT_EQ(fanin_names("L7"), (std::vector<std::string>{"L10", "L9"}));
  EXPECT_EQ(fanin_names("L9"), (std::vector<std::string>{"L6", "L7"}));
  EXPECT_EQ(fanin_names("L11"), (std::vector<std::string>{"L10", "L9"}));
}

TEST(Appendix, SolvesAndVerifies) {
  const Circuit c = appendix_fig1();
  const auto r = opt::minimize_cycle_time(c);
  ASSERT_TRUE(r) << r.error().to_string();
  EXPECT_GT(r->min_cycle, 0.0);
  EXPECT_TRUE(sta::check_schedule(c, r->schedule).feasible);
  EXPECT_TRUE(opt::satisfies_p1(c, r->schedule, r->departure, 1e-5));
}

TEST(Appendix, ParameterOverrides) {
  AppendixParams p;
  p.setup = 1.0;
  p.dq = 1.5;
  p.base_delay = 4.0;
  const Circuit c = appendix_fig1(p);
  EXPECT_DOUBLE_EQ(c.element(0).setup, 1.0);
  EXPECT_DOUBLE_EQ(c.path(0).delay, 4.0);
}

}  // namespace
}  // namespace mintc::circuits
