#include "circuits/example2.h"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/binary_search.h"
#include "graph/cycle_ratio.h"
#include "graph/scc.h"
#include "opt/mlp.h"

namespace mintc::circuits {
namespace {

TEST(Example2, StructurallyValid) {
  const Circuit c = example2();
  EXPECT_EQ(c.num_phases(), 3);
  EXPECT_EQ(c.num_elements(), 8);
  EXPECT_TRUE(c.validate().empty());
}

TEST(Example2, HasCoupledFeedbackLoops) {
  // "More complicated" than example 1: multiple latches in one SCC.
  const auto scc = graph::strongly_connected_components(example2().latch_graph());
  int nontrivial = 0;
  size_t biggest = 0;
  for (int comp = 0; comp < scc.num_components; ++comp) {
    if (scc.nontrivial[static_cast<size_t>(comp)]) {
      ++nontrivial;
      biggest = std::max(biggest, scc.members[static_cast<size_t>(comp)].size());
    }
  }
  EXPECT_GE(nontrivial, 1);
  EXPECT_GE(biggest, 6u);  // the two coupled loops share one component
}

TEST(Example2, OptimumEqualsCycleRatio) {
  // No setup constraint binds at the optimum in this design, so the LP
  // optimum coincides with the max cycle ratio bound.
  const Circuit c = example2();
  const auto r = opt::minimize_cycle_time(c);
  ASSERT_TRUE(r);
  const auto ratio = graph::max_cycle_ratio_howard(c.latch_graph());
  ASSERT_TRUE(ratio);
  EXPECT_NEAR(r->min_cycle, ratio->ratio, 1e-5);
}

TEST(Example2, NripGapIsThirtyFivePercent) {
  // The headline Fig. 9 number.
  const Circuit c = example2();
  const auto mlp = opt::minimize_cycle_time(c);
  ASSERT_TRUE(mlp);
  const auto nrip = baselines::nrip_reconstruction(c);
  EXPECT_NEAR(nrip.cycle / mlp->min_cycle, 1.35, 0.01);
}

TEST(Example2, OptimalScheduleIsAsymmetric) {
  // The reason symmetric-clock methods lose: the optimal phase widths are
  // strongly unequal.
  const auto r = opt::minimize_cycle_time(example2());
  ASSERT_TRUE(r);
  double min_w = 1e18;
  double max_w = 0.0;
  for (int p = 1; p <= 3; ++p) {
    min_w = std::min(min_w, r->schedule.T(p));
    max_w = std::max(max_w, r->schedule.T(p));
  }
  EXPECT_GT(max_w, 2.0 * min_w);
}

}  // namespace
}  // namespace mintc::circuits
