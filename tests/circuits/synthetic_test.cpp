#include "circuits/synthetic.h"

#include <gtest/gtest.h>

#include "graph/scc.h"
#include "parser/lct.h"

namespace mintc::circuits {
namespace {

TEST(Synthetic, Deterministic) {
  const SyntheticParams p;
  const Circuit a = synthetic_circuit(p, 42);
  const Circuit b = synthetic_circuit(p, 42);
  ASSERT_EQ(a.num_paths(), b.num_paths());
  for (int i = 0; i < a.num_paths(); ++i) {
    EXPECT_EQ(a.path(i).from, b.path(i).from);
    EXPECT_DOUBLE_EQ(a.path(i).delay, b.path(i).delay);
  }
  // Serialized forms are identical.
  EXPECT_EQ(parser::write_circuit(a), parser::write_circuit(b));
}

TEST(Synthetic, DifferentSeedsDiffer) {
  const SyntheticParams p;
  const Circuit a = synthetic_circuit(p, 1);
  const Circuit b = synthetic_circuit(p, 2);
  EXPECT_NE(parser::write_circuit(a), parser::write_circuit(b));
}

TEST(Synthetic, SizesMatchParams) {
  SyntheticParams p;
  p.num_phases = 3;
  p.num_stages = 6;
  p.latches_per_stage = 4;
  const Circuit c = synthetic_circuit(p, 7);
  EXPECT_EQ(c.num_elements(), 24);
  EXPECT_EQ(c.num_phases(), 3);
  EXPECT_TRUE(c.validate().empty());
}

TEST(Synthetic, RingCreatesFeedback) {
  const Circuit c = synthetic_circuit(SyntheticParams{}, 3);
  EXPECT_TRUE(graph::has_cycle(c.latch_graph()));
}

TEST(Synthetic, DelaysWithinRange) {
  SyntheticParams p;
  p.min_delay = 7.0;
  p.max_delay = 9.0;
  const Circuit c = synthetic_circuit(p, 5);
  for (const CombPath& path : c.paths()) {
    EXPECT_GE(path.delay, 7.0);
    EXPECT_LE(path.delay, 9.0);
  }
}

TEST(Synthetic, NoDuplicateParallelPaths) {
  SyntheticParams p;
  p.extra_long_edges = 20;
  const Circuit c = synthetic_circuit(p, 11);
  EXPECT_TRUE(c.validate().empty());  // validate() rejects parallel paths
}

}  // namespace
}  // namespace mintc::circuits
