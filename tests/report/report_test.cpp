// Golden-shape and cross-check tests for the signoff report subsystem.
//
// The SlackDB never computes a slack itself — it flattens what the analysis
// engines already produced — so every number in it must agree with an
// independent sta::check_schedule run to 1e-9. The exporters then get
// structural checks: the JSON parses, the HTML is one well-formed
// self-contained document, and the headline totals match the database.
#include "report/slackdb.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "circuits/example1.h"
#include "circuits/example2.h"
#include "circuits/gaas.h"
#include "obs/metrics.h"
#include "opt/mlp.h"
#include "report/export.h"
#include "sta/analysis.h"
#include "../obs/json_validate.h"

namespace mintc::report {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ClockSchedule optimum_of(const Circuit& c) {
  const auto r = opt::minimize_cycle_time(c);
  EXPECT_TRUE(r.has_value());
  return r->schedule;
}

/// The paper's Fig. 11 GaAs schedule: min-duty refinement at Tc*, phi1
/// stretched back to the cycle origin so phi3 sits inside it.
ClockSchedule gaas_published_schedule(const Circuit& c) {
  const auto base = opt::minimize_cycle_time(c);
  EXPECT_TRUE(base.has_value());
  const auto refined =
      opt::refine_schedule(c, base->min_cycle, opt::SecondaryObjective::kMinTotalWidth);
  EXPECT_TRUE(refined.has_value());
  ClockSchedule sch = refined->schedule;
  sch.width[0] += sch.start[0];
  sch.start[0] = 0.0;
  return sch;
}

/// Every record in the database must equal the independent analysis run.
void expect_matches_analysis(const Circuit& c, const ClockSchedule& s, const SlackDB& db) {
  sta::AnalysisOptions aopt;
  aopt.check_hold = true;
  aopt.provenance = true;
  const sta::TimingReport ref = sta::check_schedule(c, s, aopt);
  ASSERT_EQ(db.endpoints.size(), ref.elements.size());
  double total_borrow = 0.0;
  for (size_t i = 0; i < ref.elements.size(); ++i) {
    const EndpointRecord& rec = db.endpoints[i];
    const sta::ElementTiming& t = ref.elements[i];
    EXPECT_EQ(rec.element, static_cast<int>(i));
    EXPECT_EQ(rec.name, c.element(static_cast<int>(i)).name);
    EXPECT_NEAR(rec.departure, t.departure, 1e-9) << rec.name;
    if (std::isfinite(t.arrival)) {
      EXPECT_NEAR(rec.arrival, t.arrival, 1e-9) << rec.name;
    }
    if (std::isfinite(t.setup_slack)) {
      EXPECT_NEAR(rec.setup_slack, t.setup_slack, 1e-9) << rec.name;
    }
    if (std::isfinite(t.hold_slack)) {
      EXPECT_NEAR(rec.hold_slack, t.hold_slack, 1e-9) << rec.name;
    }
    const double want_borrow =
        c.element(static_cast<int>(i)).is_latch() ? std::max(0.0, t.departure) : 0.0;
    EXPECT_NEAR(rec.borrow, want_borrow, 1e-9) << rec.name;
    total_borrow += want_borrow;
  }
  EXPECT_NEAR(db.total_borrow, total_borrow, 1e-9);
  EXPECT_EQ(db.feasible, ref.feasible);
  EXPECT_NEAR(db.worst_setup_slack(), ref.worst_setup_slack, 1e-9);
}

TEST(SlackDbTest, Example1MatchesIndependentAnalysis) {
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule s = optimum_of(c);
  expect_matches_analysis(c, s, build_slackdb(c, s));
}

TEST(SlackDbTest, Example2MatchesIndependentAnalysis) {
  const Circuit c = circuits::example2();
  const ClockSchedule s = optimum_of(c);
  expect_matches_analysis(c, s, build_slackdb(c, s));
}

TEST(SlackDbTest, GaasMatchesIndependentAnalysis) {
  const Circuit c = circuits::gaas_datapath();
  const ClockSchedule s = gaas_published_schedule(c);
  expect_matches_analysis(c, s, build_slackdb(c, s));
}

TEST(SlackDbTest, GaasPublishedScheduleHeadlines) {
  // The paper's case study: Tc* = 4.4 ns, 91 LP rows, and the Fig. 11
  // schedule overlaps phi3 entirely inside phi1.
  const Circuit c = circuits::gaas_datapath();
  const ClockSchedule s = gaas_published_schedule(c);
  const SlackDB db = build_slackdb(c, s);
  EXPECT_NEAR(db.tc, circuits::kGaasPaperOptimalTc, 1e-6);
  EXPECT_EQ(db.num_constraints, 91);
  ASSERT_EQ(db.overlapping_phases.size(), 1u);
  EXPECT_EQ(db.overlapping_phases[0], std::make_pair(1, 3));
}

TEST(SlackDbTest, GaasBorrowProfile) {
  // Latch-controlled operation is the whole point of the GaAs schedule:
  // operand and load latches flow through past their enabling edges.
  const Circuit c = circuits::gaas_datapath();
  const ClockSchedule s = gaas_published_schedule(c);
  const SlackDB db = build_slackdb(c, s);
  EXPECT_GT(db.total_borrow, 1.0);
  for (const std::string name : {"OpA", "OpB", "LoadAl"}) {
    const auto id = c.find_element(name);
    ASSERT_TRUE(id.has_value());
    EXPECT_GT(db.endpoints[static_cast<size_t>(*id)].borrow, 0.0) << name;
  }
  // Flip-flops never borrow: their departure is pinned to the edge.
  for (const std::string name : {"PC", "Bcond", "Exc"}) {
    const auto id = c.find_element(name);
    ASSERT_TRUE(id.has_value());
    EXPECT_DOUBLE_EQ(db.endpoints[static_cast<size_t>(*id)].borrow, 0.0) << name;
  }
  // Chains are sorted by total borrow, cover only borrowing latches, and
  // sum (across all chains) to at most the database total.
  ASSERT_FALSE(db.borrow_chains.empty());
  double chain_sum = 0.0;
  for (size_t i = 0; i < db.borrow_chains.size(); ++i) {
    const BorrowChain& chain = db.borrow_chains[i];
    ASSERT_FALSE(chain.elements.empty());
    double member_sum = 0.0;
    for (const int e : chain.elements) {
      member_sum += db.endpoints[static_cast<size_t>(e)].borrow;
    }
    EXPECT_NEAR(chain.total_borrow, member_sum, 1e-9);
    EXPECT_EQ(chain.paths.size(), chain.elements.size() - (chain.is_loop ? 0 : 1));
    if (i) {
      EXPECT_LE(chain.total_borrow, db.borrow_chains[i - 1].total_borrow + 1e-12);
    }
    chain_sum += chain.total_borrow;
  }
  EXPECT_LE(chain_sum, db.total_borrow + 1e-9);
}

TEST(SlackDbTest, WorstListsAreSortedAndBounded) {
  const Circuit c = circuits::gaas_datapath();
  const ClockSchedule s = gaas_published_schedule(c);
  SlackDbOptions opt;
  opt.nworst = 4;
  const SlackDB db = build_slackdb(c, s, opt);
  ASSERT_EQ(db.worst_endpoints.size(), 4u);
  ASSERT_LE(db.worst_paths.size(), 4u);
  for (size_t i = 1; i < db.worst_endpoints.size(); ++i) {
    EXPECT_LE(db.endpoints[static_cast<size_t>(db.worst_endpoints[i - 1])].setup_slack,
              db.endpoints[static_cast<size_t>(db.worst_endpoints[i])].setup_slack + 1e-12);
  }
  for (size_t i = 1; i < db.worst_paths.size(); ++i) {
    EXPECT_LE(db.paths[static_cast<size_t>(db.worst_paths[i - 1])].slack,
              db.paths[static_cast<size_t>(db.worst_paths[i])].slack + 1e-12);
  }
}

TEST(SlackDbTest, HistogramTotalsAreConsistent) {
  const Circuit c = circuits::example2();
  const ClockSchedule s = optimum_of(c);
  const SlackDB db = build_slackdb(c, s);
  // Bucket counts sum to the population; the population is every finite
  // setup slack; min/max bracket the quantiles.
  long in_buckets = std::accumulate(db.setup_hist.buckets.begin(),
                                    db.setup_hist.buckets.end(), 0L);
  EXPECT_EQ(in_buckets, db.setup_hist.count);
  long finite = 0;
  for (const EndpointRecord& r : db.endpoints) {
    if (r.setup_slack < kInf) ++finite;
  }
  EXPECT_EQ(db.setup_hist.count, finite);
  EXPECT_LE(db.setup_hist.min, db.setup_hist.p50);
  EXPECT_LE(db.setup_hist.p50, db.setup_hist.p95);
  EXPECT_LE(db.setup_hist.p95, db.setup_hist.p99);
  EXPECT_LE(db.setup_hist.p99, db.setup_hist.max);
  EXPECT_NEAR(db.setup_hist.min, db.worst_setup_slack(), 1e-9);
}

TEST(SlackDbTest, MirrorsHeadlinesIntoMetricsRegistry) {
  obs::MetricsRegistry::instance().reset();
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule s = optimum_of(c);
  const SlackDB db = build_slackdb(c, s);
  // Match on name + circuit label: registry handles persist across tests in
  // this process, so points for other circuits may coexist (zeroed).
  const auto for_this_circuit = [&](const obs::MetricPoint& p) {
    return std::any_of(p.labels.begin(), p.labels.end(), [&](const auto& label) {
      return label.first == "circuit" && label.second == db.circuit;
    });
  };
  bool saw_gauge = false, saw_hist = false;
  for (const obs::MetricPoint& p : obs::MetricsRegistry::instance().snapshot()) {
    if (!for_this_circuit(p)) continue;
    if (p.name == "report.worst_setup_slack") {
      saw_gauge = true;
      EXPECT_NEAR(p.value, db.worst_setup_slack(), 1e-9);
    }
    if (p.name == "report.setup_slack") saw_hist = true;
  }
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);
}

// ----------------------------------------------------------- exporters --

TEST(ReportExportTest, JsonIsValidAndCarriesMetaHeader) {
  const Circuit c = circuits::gaas_datapath();
  const ClockSchedule s = gaas_published_schedule(c);
  const SlackDB db = build_slackdb(c, s);
  const std::string json = report_json(db);
  EXPECT_TRUE(mintc::testing::is_valid_json(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"meta\""), std::string::npos);
  EXPECT_NE(json.find("\"schedule_hash\""), std::string::npos);
  EXPECT_NE(json.find("\"circuit\": \"gaas_mips_datapath\""), std::string::npos);
  EXPECT_NE(json.find("\"num_constraints\": 91"), std::string::npos);
  EXPECT_NE(json.find("\"borrow_chains\""), std::string::npos);
  EXPECT_NE(json.find("\"overlapping_phases\": [[1, 3]]"), std::string::npos);
}

TEST(ReportExportTest, CornerIsPartOfTheRunIdentityHash) {
  // RunMetadata contract (obs/export.h): two corners of the same
  // circuit+schedule are DIFFERENT runs — meta_for must mix the corner into
  // schedule_hash so no cache keyed on it can ever serve the slow corner's
  // numbers for the fast corner (the serve result cache relies on this).
  const Circuit c = circuits::example1();
  const ClockSchedule s = optimum_of(c);
  const SignoffDB signoff = build_signoff(c, s, sta::standard_corners(0.1));
  ASSERT_GE(signoff.corners.size(), 2u);

  const auto schedule_hash_of = [](const SlackDB& db) {
    const std::string json = report_json(db);
    const size_t key = json.find("\"schedule_hash\": \"");
    EXPECT_NE(key, std::string::npos);
    const size_t start = key + std::string("\"schedule_hash\": \"").size();
    return json.substr(start, json.find('"', start) - start);
  };

  const std::string nominal = schedule_hash_of(build_slackdb(c, s));
  std::vector<std::string> hashes{nominal};
  for (const SlackDB& db : signoff.corners) {
    const std::string h = schedule_hash_of(db);
    for (const std::string& seen : hashes) {
      EXPECT_NE(h, seen) << "corner \"" << db.corner
                         << "\" shares a run hash with another corner";
    }
    hashes.push_back(h);
    // The corner id itself is stamped into the meta header.
    EXPECT_NE(report_json(db).find("\"corner\": \"" + db.corner + "\""),
              std::string::npos);
  }
}

TEST(ReportExportTest, TableNamesTheHeadlines) {
  const Circuit c = circuits::example2();
  const ClockSchedule s = optimum_of(c);
  const std::string table = report_table(build_slackdb(c, s));
  EXPECT_NE(table.find("timing signoff report"), std::string::npos);
  EXPECT_NE(table.find("worst"), std::string::npos);
  EXPECT_NE(table.find("p50"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
}

TEST(ReportExportTest, HtmlIsOneSelfContainedDocument) {
  const Circuit c = circuits::gaas_datapath();
  const ClockSchedule s = gaas_published_schedule(c);
  const SlackDB db = build_slackdb(c, s);
  const std::string html = report_html(c, db);

  const auto count = [&](const std::string& needle) {
    size_t n = 0, pos = 0;
    while ((pos = html.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  // Exactly one document.
  EXPECT_EQ(count("<!DOCTYPE"), 1u);
  EXPECT_EQ(count("<html"), 1u);
  EXPECT_EQ(count("</html>"), 1u);
  EXPECT_EQ(count("<body"), 1u);
  EXPECT_EQ(count("</body>"), 1u);
  // Balanced structural tags.
  EXPECT_EQ(count("<section"), count("</section>"));
  EXPECT_EQ(count("<table"), count("</table>"));
  EXPECT_EQ(count("<svg"), count("</svg>"));
  EXPECT_EQ(count("<tr"), count("</tr>"));
  EXPECT_GE(count("<svg"), 3u);  // timing diagram + histogram + borrow chart
  // Self-contained: no external assets of any kind.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("<link"), std::string::npos);
  EXPECT_EQ(html.find("<img"), std::string::npos);
  EXPECT_EQ(html.find("@import"), std::string::npos);
  // The headline values appear.
  EXPECT_NE(html.find("4.4"), std::string::npos);
  EXPECT_NE(html.find("constraints"), std::string::npos);
  EXPECT_NE(html.find("phi1 &cap; phi3"), std::string::npos);
}

TEST(ReportExportTest, SignoffMergedViewIsThePerCornerMinimum) {
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule s = optimum_of(c);
  const SignoffDB db = build_signoff(c, s);
  ASSERT_EQ(db.corners.size(), 3u);
  ASSERT_EQ(db.merged_setup_slack.size(), db.corners.front().endpoints.size());
  for (size_t i = 0; i < db.merged_setup_slack.size(); ++i) {
    double min_setup = kInf, min_hold = kInf;
    for (const SlackDB& corner : db.corners) {
      min_setup = std::min(min_setup, corner.endpoints[i].setup_slack);
      min_hold = std::min(min_hold, corner.endpoints[i].hold_slack);
    }
    if (min_setup < kInf) {
      EXPECT_NEAR(db.merged_setup_slack[i], min_setup, 1e-9);
      const int at = db.merged_setup_corner[i];
      ASSERT_GE(at, 0);
      EXPECT_NEAR(db.corners[static_cast<size_t>(at)].endpoints[i].setup_slack, min_setup,
                  1e-9);
    }
    if (min_hold < kInf) {
      EXPECT_NEAR(db.merged_hold_slack[i], min_hold, 1e-9);
    }
  }
  bool all_pass = true;
  for (const SlackDB& corner : db.corners) all_pass = all_pass && corner.feasible;
  EXPECT_EQ(db.all_pass, all_pass);

  const std::string json = signoff_json(db);
  EXPECT_TRUE(mintc::testing::is_valid_json(json)) << json.substr(0, 400);
  EXPECT_NE(json.find("\"all_pass\""), std::string::npos);
  EXPECT_NE(json.find("\"merged\""), std::string::npos);
  const std::string html = signoff_html(c, db);
  EXPECT_NE(html.find("<!DOCTYPE"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  EXPECT_NE(html.find("slow"), std::string::npos);
  EXPECT_NE(html.find("fast"), std::string::npos);
}

TEST(ReportExportTest, InfeasibleScheduleStillExports) {
  // Squeeze example 2's optimum cycle by 20%: setup fails, yet the report
  // must still build and export (that is what signoff is for).
  const Circuit c = circuits::example2();
  ClockSchedule s = optimum_of(c);
  const double shrink = 0.8;
  s.cycle *= shrink;
  for (double& v : s.start) v *= shrink;
  for (double& v : s.width) v *= shrink;
  const SlackDB db = build_slackdb(c, s);
  EXPECT_FALSE(db.feasible);
  EXPECT_LT(db.worst_setup_slack(), 0.0);
  EXPECT_TRUE(mintc::testing::is_valid_json(report_json(db)));
  const std::string html = report_html(c, db);
  EXPECT_NE(html.find("FAIL"), std::string::npos);
  const std::string table = report_table(db);
  EXPECT_NE(table.find("FAIL"), std::string::npos);
}

}  // namespace
}  // namespace mintc::report
