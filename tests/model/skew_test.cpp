// Per-element clock skew as a model dimension: validation, the TimingView's
// fused capture margins (setup_margin = setup + skew, hold_margin = hold +
// skew), incremental max_skew maintenance, and the debug-build bounds on
// set_element_skew. Death tests only compile where assert() is live.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "circuits/example2.h"
#include "model/circuit.h"
#include "model/timing_view.h"

namespace mintc {
namespace {

Circuit two_latch_circuit() {
  Circuit c("skewed", 2);
  c.add_latch("A", 1, 1.0, 2.0);
  c.add_latch("B", 2, 1.5, 3.0);
  c.add_path("A", "B", 10.0);
  c.add_path("B", "A", 12.0);
  return c;
}

TEST(Skew, DefaultsToZeroAndValidates) {
  const Circuit c = two_latch_circuit();
  for (int i = 0; i < c.num_elements(); ++i) EXPECT_EQ(c.element(i).skew, 0.0);
  EXPECT_TRUE(c.validate().empty());
}

TEST(Skew, NegativeSkewFailsValidation) {
  Circuit c = two_latch_circuit();
  c.element(0).skew = -0.5;
  const std::vector<std::string> problems = c.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("negative clock skew"), std::string::npos);
  EXPECT_NE(problems[0].find("'A'"), std::string::npos);
}

TEST(Skew, NonFiniteSkewFailsValidation) {
  Circuit c = two_latch_circuit();
  c.element(1).skew = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(c.validate().empty());
  c.element(1).skew = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(c.validate().empty());
}

TEST(Skew, ViewFusesCaptureMargins) {
  Circuit c = two_latch_circuit();
  c.element(0).skew = 0.25;
  c.element(0).hold = 0.5;
  const TimingView v(c);
  EXPECT_EQ(v.skew(0), 0.25);
  EXPECT_EQ(v.skew(1), 0.0);
  EXPECT_EQ(v.setup_margin(0), 1.0 + 0.25);
  EXPECT_EQ(v.hold_margin(0), 0.5 + 0.25);
  // Zero skew leaves the margins bitwise equal to the raw requirements.
  EXPECT_EQ(v.setup_margin(1), v.setup(1));
  EXPECT_EQ(v.hold_margin(1), v.hold(1));
  EXPECT_EQ(v.max_skew(), 0.25);
}

TEST(Skew, SetElementSkewRefreshesMarginsAndMaxSkew) {
  TimingView v(two_latch_circuit());
  EXPECT_EQ(v.max_skew(), 0.0);
  v.set_element_skew(0, 2.0);
  v.set_element_skew(1, 3.0);
  EXPECT_EQ(v.max_skew(), 3.0);
  EXPECT_EQ(v.setup_margin(1), 1.5 + 3.0);
  // Shrinking the current maximum forces the O(l) rescan path.
  v.set_element_skew(1, 0.5);
  EXPECT_EQ(v.max_skew(), 2.0);
  v.set_element_skew(0, 0.0);
  EXPECT_EQ(v.max_skew(), 0.5);
  EXPECT_EQ(v.setup_margin(0), v.setup(0));
}

TEST(Skew, SetupAndHoldEditsPreserveTheSkewTerm) {
  TimingView v(two_latch_circuit());
  v.set_element_skew(0, 0.75);
  v.set_element_setup(0, 4.0);
  v.set_element_hold(0, 2.0);
  EXPECT_EQ(v.setup_margin(0), 4.0 + 0.75);
  EXPECT_EQ(v.hold_margin(0), 2.0 + 0.75);
}

TEST(Skew, SkewEditIsSlackOnly) {
  // A skew edit must not disturb the per-edge constants the warm-start
  // precondition of the fixpoint depends on (max_nondecreasing semantics
  // cover delays, not capture margins).
  TimingView v(two_latch_circuit());
  const double before = v.edge_max_const(v.fanin_begin(1));
  const std::uint64_t gen = v.generation();
  v.set_element_skew(1, 1.25);
  EXPECT_EQ(v.edge_max_const(v.fanin_begin(1)), before);
  EXPECT_GT(v.generation(), gen);
}

TEST(Skew, ViewRoundTripsPaperCircuitWithSkews) {
  Circuit c = circuits::example2();
  for (int i = 0; i < c.num_elements(); ++i) {
    c.element(i).skew = 0.1 * static_cast<double>(i + 1);
  }
  const TimingView v(c);
  for (int i = 0; i < c.num_elements(); ++i) {
    EXPECT_EQ(v.skew(i), c.element(i).skew);
    EXPECT_EQ(v.setup_margin(i), c.element(i).setup + c.element(i).skew);
    EXPECT_EQ(v.hold_margin(i), c.element(i).hold + c.element(i).skew);
  }
}

#ifndef NDEBUG

using SkewDeathTest = ::testing::Test;

TEST(SkewDeathTest, NegativeSkewEditIsCaught) {
  TimingView v(two_latch_circuit());
  EXPECT_DEATH(v.set_element_skew(0, -1.0), "finite and nonnegative");
}

TEST(SkewDeathTest, NonFiniteSkewEditIsCaught) {
  TimingView v(two_latch_circuit());
  EXPECT_DEATH(v.set_element_skew(0, std::numeric_limits<double>::infinity()),
               "finite and nonnegative");
  EXPECT_DEATH(v.set_element_skew(0, std::numeric_limits<double>::quiet_NaN()),
               "finite and nonnegative");
}

TEST(SkewDeathTest, SkewedCircuitConstructionAssertsOnNegative) {
  Circuit c = two_latch_circuit();
  c.element(0).skew = -0.1;
  EXPECT_DEATH(TimingView{c}, "finite and nonnegative");
}

#endif  // NDEBUG

}  // namespace
}  // namespace mintc
