#include "model/timing_view.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/appendix_fig1.h"
#include "circuits/example1.h"
#include "circuits/example2.h"
#include "circuits/gaas.h"

namespace mintc {
namespace {

// The view must be a faithful re-indexing of the Circuit: same edges, same
// per-destination order, same constants — just flattened.
void expect_view_matches(const Circuit& c) {
  const TimingView v(c);
  ASSERT_EQ(v.num_elements(), c.num_elements());
  ASSERT_EQ(v.num_edges(), c.num_paths());
  ASSERT_EQ(v.num_phases(), c.num_phases());

  for (int i = 0; i < c.num_elements(); ++i) {
    const Element& e = c.element(i);
    EXPECT_EQ(v.is_latch(i), e.is_latch());
    EXPECT_EQ(v.phase(i), e.phase);
    EXPECT_EQ(v.setup(i), e.setup);
    EXPECT_EQ(v.hold(i), e.hold);
    EXPECT_EQ(v.dq(i), e.dq);
    EXPECT_EQ(v.min_dq(i), e.min_dq());

    // Fan-in CSR preserves Circuit::fanin's per-destination order.
    const std::vector<int>& fin = c.fanin(i);
    ASSERT_EQ(v.fanin_count(i), static_cast<int>(fin.size()));
    for (size_t k = 0; k < fin.size(); ++k) {
      const EdgeIndex e_id = v.fanin_begin(i) + static_cast<EdgeIndex>(k);
      const CombPath& path = c.path(fin[k]);
      EXPECT_EQ(v.edge_path(e_id), fin[k]);
      EXPECT_EQ(v.edge_of_path(fin[k]), e_id);
      EXPECT_EQ(v.edge_src(e_id), path.from);
      EXPECT_EQ(v.edge_dst(e_id), i);
      const Element& src = c.element(path.from);
      EXPECT_EQ(v.edge_max_const(e_id), src.dq + path.delay);
      EXPECT_EQ(v.edge_min_const(e_id), src.min_dq() + path.min_delay);
      EXPECT_EQ(v.edge_cross(e_id), c_flag(src.phase, e.phase));
      EXPECT_EQ(v.edge_shift(e_id), (src.phase - 1) * c.num_phases() + (e.phase - 1));
    }

    // Fan-out CSR preserves Circuit::fanout's order, as edge ids.
    const std::vector<int>& fout = c.fanout(i);
    ASSERT_EQ(v.fanout_end(i) - v.fanout_begin(i), static_cast<int>(fout.size()));
    for (size_t k = 0; k < fout.size(); ++k) {
      const EdgeIndex e_id = v.fanout_edge(v.fanout_begin(i) + static_cast<EdgeIndex>(k));
      EXPECT_EQ(v.edge_path(e_id), fout[k]);
      EXPECT_EQ(v.edge_src(e_id), i);
      EXPECT_EQ(v.edge_dst(e_id), c.path(fout[k]).to);
    }
  }
}

TEST(TimingView, MatchesCircuitOnPaperCircuits) {
  expect_view_matches(circuits::example1(80.0));
  expect_view_matches(circuits::example2());
  expect_view_matches(circuits::gaas_datapath());
  expect_view_matches(circuits::appendix_fig1());
}

TEST(TimingView, EmptyCircuit) {
  const Circuit c("empty", 2);
  const TimingView v(c);
  EXPECT_EQ(v.num_elements(), 0);
  EXPECT_EQ(v.num_edges(), 0);
  EXPECT_EQ(v.divergence_base(), 0.0);
}

TEST(TimingView, DivergenceBaseSumsDelaysAndDq) {
  Circuit c("sum", 2);
  c.add_latch("A", 1, 1.0, 2.0);
  c.add_latch("B", 2, 1.0, 3.0);
  c.add_path("A", "B", 10.0);
  c.add_path("B", "A", 20.0);
  const TimingView v(c);
  EXPECT_DOUBLE_EQ(v.divergence_base(), 2.0 + 3.0 + 10.0 + 20.0);
}

TEST(ShiftTable, MatchesScheduleShift) {
  const ClockSchedule sch(4.4, {0.0, 0.9, 4.4}, {0.8, 0.9, 0.15});
  const ShiftTable t(sch);
  ASSERT_EQ(t.num_phases(), 3);
  EXPECT_EQ(t.cycle(), sch.cycle);
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(t.start(i), sch.s(i));
    EXPECT_EQ(t.width(i), sch.T(i));
    for (int j = 1; j <= 3; ++j) {
      EXPECT_EQ(t.shift(i, j), sch.shift(i, j));
      EXPECT_EQ(t.at((i - 1) * 3 + (j - 1)), sch.shift(i, j));
    }
  }
}

TEST(TimingView, KernelMatchesHandComputation) {
  // Same hand computation as the fixpoint test: example 1 at its optimum.
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule sch(110.0, {0.0, 80.0}, {80.0, 30.0});
  const TimingView v(c);
  const ShiftTable t(sch);
  const std::vector<double> zero(4, 0.0);
  EXPECT_NEAR(departure_update(v, t, zero, 0), 60.0, 1e-9);
  EXPECT_NEAR(departure_update(v, t, zero, 1), 0.0, 1e-9);
  // No fan-in => arrival is -inf (the paper's Δ == -inf convention).
  Circuit iso("iso", 1);
  iso.add_latch("X", 1, 1.0, 2.0);
  const TimingView vi(iso);
  const ShiftTable ti(ClockSchedule(10.0, {0.0}, {5.0}));
  EXPECT_TRUE(std::isinf(arrival_update(vi, ti, {0.0}, 0)));
}

}  // namespace
}  // namespace mintc
