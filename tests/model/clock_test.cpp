#include "model/clock.h"

#include <gtest/gtest.h>

namespace mintc {
namespace {

TEST(CMatrix, PaperDefinition) {
  // Eq. (1): C_ij = 0 for i < j, 1 for i >= j.
  EXPECT_EQ(c_flag(1, 2), 0);
  EXPECT_EQ(c_flag(1, 3), 0);
  EXPECT_EQ(c_flag(2, 2), 1);
  EXPECT_EQ(c_flag(3, 1), 1);
  EXPECT_EQ(c_flag(2, 1), 1);
}

TEST(ShiftOperator, MatchesAppendixOperators) {
  // The Appendix lists, for a 4-phase clock:
  //   S13 = s1 - s3          S21 = s2 - s1 - Tc    S31 = s3 - s1 - Tc
  //   S14 = s1 - s4          S23 = s2 - s3         S32 = s3 - s2 - Tc
  //   S24 = s2 - s4          S42 = s4 - s2 - Tc    S43 = s4 - s3 - Tc
  ClockSchedule sch(100.0, {0.0, 10.0, 30.0, 70.0}, {5.0, 15.0, 35.0, 20.0});
  EXPECT_DOUBLE_EQ(sch.shift(1, 3), 0.0 - 30.0);
  EXPECT_DOUBLE_EQ(sch.shift(1, 4), 0.0 - 70.0);
  EXPECT_DOUBLE_EQ(sch.shift(2, 1), 10.0 - 0.0 - 100.0);
  EXPECT_DOUBLE_EQ(sch.shift(2, 3), 10.0 - 30.0);
  EXPECT_DOUBLE_EQ(sch.shift(2, 4), 10.0 - 70.0);
  EXPECT_DOUBLE_EQ(sch.shift(3, 1), 30.0 - 0.0 - 100.0);
  EXPECT_DOUBLE_EQ(sch.shift(3, 2), 30.0 - 10.0 - 100.0);
  EXPECT_DOUBLE_EQ(sch.shift(4, 2), 70.0 - 10.0 - 100.0);
  EXPECT_DOUBLE_EQ(sch.shift(4, 3), 70.0 - 30.0 - 100.0);
}

TEST(ShiftOperator, SamePhaseCrossesFullCycle) {
  ClockSchedule sch(50.0, {0.0, 20.0}, {10.0, 10.0});
  EXPECT_DOUBLE_EQ(sch.shift(1, 1), -50.0);
  EXPECT_DOUBLE_EQ(sch.shift(2, 2), -50.0);
}

TEST(ClockSchedule, Accessors) {
  ClockSchedule sch(110.0, {0.0, 80.0}, {80.0, 30.0});
  EXPECT_EQ(sch.num_phases(), 2);
  EXPECT_DOUBLE_EQ(sch.s(1), 0.0);
  EXPECT_DOUBLE_EQ(sch.T(2), 30.0);
  EXPECT_DOUBLE_EQ(sch.phase_end(2), 110.0);
}

TEST(ClockSchedule, Scaling) {
  ClockSchedule sch(100.0, {0.0, 50.0}, {40.0, 40.0});
  const ClockSchedule d = sch.scaled(2.0);
  EXPECT_DOUBLE_EQ(d.cycle, 200.0);
  EXPECT_DOUBLE_EQ(d.s(2), 100.0);
  EXPECT_DOUBLE_EQ(d.T(1), 80.0);
}

TEST(SymmetricSchedule, PaperFig3TwoPhase) {
  // Fig. 3 two-phase: back-to-back half-period phases.
  const ClockSchedule sch = symmetric_schedule(2, 100.0);
  EXPECT_DOUBLE_EQ(sch.s(1), 0.0);
  EXPECT_DOUBLE_EQ(sch.s(2), 50.0);
  EXPECT_DOUBLE_EQ(sch.T(1), 50.0);
  EXPECT_DOUBLE_EQ(sch.T(2), 50.0);
}

TEST(SymmetricSchedule, DutyCycle) {
  const ClockSchedule sch = symmetric_schedule(4, 100.0, 0.5);
  EXPECT_DOUBLE_EQ(sch.s(3), 50.0);
  EXPECT_DOUBLE_EQ(sch.T(3), 12.5);
}

TEST(KMatrix, SetAndCount) {
  KMatrix k(3);
  EXPECT_EQ(k.num_pairs(), 0);
  k.set(1, 2, true);
  k.set(2, 1, true);
  EXPECT_TRUE(k.at(1, 2));
  EXPECT_FALSE(k.at(1, 3));
  EXPECT_EQ(k.num_pairs(), 2);
  k.set(1, 2, false);
  EXPECT_EQ(k.num_pairs(), 1);
}

TEST(ClockConstraints, ValidSymmetricSchedulesPass) {
  // Fig. 3: canonical 2-, 3-, 4-phase clocks satisfy C1-C4 with fully
  // populated K matrices (any phase pair).
  for (int k = 2; k <= 4; ++k) {
    KMatrix K(k);
    for (int i = 1; i <= k; ++i) {
      for (int j = 1; j <= k; ++j) K.set(i, j, true);
    }
    const ClockSchedule sch = symmetric_schedule(k, 100.0);
    EXPECT_TRUE(check_clock_constraints(sch, K).empty()) << "k=" << k;
  }
}

TEST(ClockConstraints, C1ViolationDetected) {
  KMatrix K(2);
  ClockSchedule sch(10.0, {0.0, 5.0}, {20.0, 2.0});  // T1 > Tc
  const auto v = check_clock_constraints(sch, K);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v[0].constraint.find("C1"), std::string::npos);
}

TEST(ClockConstraints, C2OrderingViolationDetected) {
  KMatrix K(2);
  ClockSchedule sch(100.0, {50.0, 10.0}, {10.0, 10.0});  // s1 > s2
  const auto v = check_clock_constraints(sch, K);
  ASSERT_FALSE(v.empty());
  bool found = false;
  for (const auto& viol : v) found |= viol.constraint.find("C2") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(ClockConstraints, C3OverlapViolationOnlyForKPairs) {
  // phi1 = [0,60), phi2 = [50,90): overlapping.
  ClockSchedule sch(100.0, {0.0, 50.0}, {60.0, 40.0});
  KMatrix none(2);
  EXPECT_TRUE(check_clock_constraints(sch, none).empty());

  KMatrix k21(2);
  k21.set(2, 1, true);  // data phi2 -> phi1: requires phi1 end before phi2 start
  const auto v = check_clock_constraints(sch, k21);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].constraint.find("C3"), std::string::npos);
  EXPECT_NEAR(v[0].amount, 10.0, 1e-9);  // s2 >= s1 + T1 violated by 10
}

TEST(ClockConstraints, C4NegativeValuesDetected) {
  KMatrix K(1);
  ClockSchedule sch(-5.0, {-1.0}, {-2.0});
  const auto v = check_clock_constraints(sch, K);
  EXPECT_GE(v.size(), 3u);
}

TEST(ClockConstraints, ExampleOneOptimalSchedulePasses) {
  // The example-1 optimum from Section V: Tc=110 with phi1=[0,80),
  // phi2=[80,110); K = {12, 21}.
  KMatrix K(2);
  K.set(1, 2, true);
  K.set(2, 1, true);
  ClockSchedule sch(110.0, {0.0, 80.0}, {80.0, 30.0});
  EXPECT_TRUE(check_clock_constraints(sch, K).empty());
}

TEST(KMatrix, ToStringPaperStyle) {
  KMatrix k(2);
  k.set(1, 2, true);
  const std::string s = k.to_string();
  EXPECT_NE(s.find("[ 0 1"), std::string::npos);
}

}  // namespace
}  // namespace mintc
