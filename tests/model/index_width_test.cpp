// Regression coverage for the 32-bit edge-offset overflow: TimingView's CSR
// offsets and edge indices are EdgeIndex (int64), and the builder rejects
// circuits whose edge count cannot be represented.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <type_traits>

#include "model/timing_view.h"

namespace mintc {
namespace {

// The index type itself: accessors must hand back 64-bit indices, so CSR
// arithmetic (offset sums, begin/end differences) cannot wrap even when the
// per-element fan-in totals exceed 2^31. Compile-time facts, checked here so
// a future "optimization" back to int fails loudly.
static_assert(std::is_same_v<EdgeIndex, std::int64_t>);
static_assert(std::is_same_v<decltype(std::declval<const TimingView&>().fanin_begin(0)),
                             EdgeIndex>);
static_assert(std::is_same_v<decltype(std::declval<const TimingView&>().fanin_end(0)),
                             EdgeIndex>);
static_assert(std::is_same_v<decltype(std::declval<const TimingView&>().fanin_count(0)),
                             EdgeIndex>);
static_assert(std::is_same_v<decltype(std::declval<const TimingView&>().fanout_begin(0)),
                             EdgeIndex>);
static_assert(std::is_same_v<decltype(std::declval<const TimingView&>().edge_of_path(0)),
                             EdgeIndex>);

TEST(IndexWidth, CapacityCheckAtTheBoundary) {
  // 2^31 - 1 edges is the last representable count (Circuit's path ids are
  // int); one past it must be rejected. The predicate is what the TimingView
  // constructor asserts, testable without materializing 2^31 edges.
  const std::int64_t kint_max = std::numeric_limits<int>::max();
  EXPECT_EQ(TimingView::kMaxEdges, kint_max);
  EXPECT_TRUE(TimingView::edge_capacity_ok(0));
  EXPECT_TRUE(TimingView::edge_capacity_ok(kint_max));
  EXPECT_FALSE(TimingView::edge_capacity_ok(kint_max + 1));
  EXPECT_FALSE(TimingView::edge_capacity_ok(std::numeric_limits<std::int64_t>::max()));
  EXPECT_FALSE(TimingView::edge_capacity_ok(-1));
}

TEST(IndexWidth, CsrOffsetsAreExactOnAModestCircuit) {
  // Sanity that the widened offsets still agree with Circuit's adjacency.
  Circuit c("csr", 2);
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    c.add_latch("l" + std::to_string(i), (i % 2) + 1, 0.3, 0.5);
  }
  // Dense-ish fan-in: every latch fed by the previous three.
  for (int i = 1; i < n; ++i) {
    for (int back = 1; back <= 3 && i - back >= 0; ++back) {
      c.add_path(i - back, i, 1.0);
    }
  }
  const TimingView v(c);
  EdgeIndex total = 0;
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(v.fanin_count(i), v.fanin_end(i) - v.fanin_begin(i));
    EXPECT_EQ(v.fanin_count(i), static_cast<EdgeIndex>(c.fanin(i).size()));
    total += v.fanin_count(i);
  }
  EXPECT_EQ(total, static_cast<EdgeIndex>(c.num_paths()));
  for (int p = 0; p < c.num_paths(); ++p) {
    const EdgeIndex e = v.edge_of_path(p);
    EXPECT_EQ(v.edge_src(e), c.path(p).from);
    EXPECT_EQ(v.edge_dst(e), c.path(p).to);
  }
}

}  // namespace
}  // namespace mintc
