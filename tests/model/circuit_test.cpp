#include "model/circuit.h"

#include <gtest/gtest.h>

#include <limits>

namespace mintc {
namespace {

Circuit two_phase_loop() {
  Circuit c("loop", 2);
  c.add_latch("A", 1, 1.0, 2.0);
  c.add_latch("B", 2, 1.0, 2.0);
  c.add_path("A", "B", 10.0, 2.0, "f");
  c.add_path("B", "A", 20.0, 4.0, "g");
  return c;
}

TEST(Circuit, BasicConstruction) {
  const Circuit c = two_phase_loop();
  EXPECT_EQ(c.name(), "loop");
  EXPECT_EQ(c.num_phases(), 2);
  EXPECT_EQ(c.num_elements(), 2);
  EXPECT_EQ(c.num_paths(), 2);
  EXPECT_EQ(c.element(0).name, "A");
  EXPECT_EQ(c.path(0).delay, 10.0);
  EXPECT_EQ(c.path(1).label, "g");
}

TEST(Circuit, FindElement) {
  const Circuit c = two_phase_loop();
  EXPECT_EQ(c.find_element("A"), std::optional<int>(0));
  EXPECT_EQ(c.find_element("B"), std::optional<int>(1));
  EXPECT_FALSE(c.find_element("nope").has_value());
}

TEST(Circuit, FaninFanout) {
  Circuit c("f", 2);
  c.add_latch("A", 1, 1.0, 2.0);
  c.add_latch("B", 2, 1.0, 2.0);
  c.add_latch("C", 2, 1.0, 2.0);
  c.add_path("A", "C", 1.0);
  c.add_path("B", "C", 1.0);
  EXPECT_EQ(c.fanin(2).size(), 2u);
  EXPECT_EQ(c.fanout(0).size(), 1u);
  EXPECT_TRUE(c.fanin(0).empty());
  EXPECT_EQ(c.max_fanin(), 2);
}

TEST(Circuit, SetPathDelay) {
  Circuit c = two_phase_loop();
  c.set_path_delay(1, 99.0);
  EXPECT_EQ(c.path(1).delay, 99.0);
}

TEST(Circuit, SetPathMinDelay) {
  Circuit c = two_phase_loop();
  c.set_path_min_delay(0, 7.5);
  EXPECT_EQ(c.path(0).min_delay, 7.5);
  EXPECT_EQ(c.path(0).delay, 10.0);  // max delay untouched
}

TEST(Circuit, KMatrixFromLatchPaths) {
  const Circuit c = two_phase_loop();
  const KMatrix k = c.k_matrix();
  EXPECT_TRUE(k.at(1, 2));
  EXPECT_TRUE(k.at(2, 1));
  EXPECT_FALSE(k.at(1, 1));
  EXPECT_FALSE(k.at(2, 2));
}

TEST(Circuit, FlipFlopPathsExemptFromK) {
  Circuit c("ff", 2);
  c.add_latch("L", 1, 1.0, 2.0);
  c.add_flipflop("F", 2, 1.0, 2.0);
  c.add_path("L", "F", 5.0);
  c.add_path("F", "L", 5.0);
  const KMatrix k = c.k_matrix();
  EXPECT_EQ(k.num_pairs(), 0);
}

TEST(Circuit, LatchGraphWeightsAndTransit) {
  const Circuit c = two_phase_loop();
  const graph::Digraph g = c.latch_graph();
  ASSERT_EQ(g.num_edges(), 2);
  // A(phi1) -> B(phi2): weight dq_A + delay = 2 + 10, transit C_12 = 0.
  EXPECT_DOUBLE_EQ(g.edge(0).weight, 12.0);
  EXPECT_DOUBLE_EQ(g.edge(0).transit, 0.0);
  // B(phi2) -> A(phi1): 2 + 20, transit C_21 = 1.
  EXPECT_DOUBLE_EQ(g.edge(1).weight, 22.0);
  EXPECT_DOUBLE_EQ(g.edge(1).transit, 1.0);
}

TEST(CircuitValidate, CleanCircuitPasses) {
  EXPECT_TRUE(two_phase_loop().validate().empty());
}

TEST(CircuitValidate, PhaseOutOfRange) {
  Circuit c("bad", 2);
  Element e;
  e.name = "X";
  e.phase = 3;
  e.setup = 1.0;
  e.dq = 2.0;
  c.add_element(e);
  const auto p = c.validate();
  ASSERT_FALSE(p.empty());
  EXPECT_NE(p[0].find("phase 3"), std::string::npos);
}

TEST(CircuitValidate, NegativeParameters) {
  Circuit c("bad", 1);
  c.add_latch("X", 1, -1.0, 2.0);
  EXPECT_FALSE(c.validate().empty());
}

TEST(CircuitValidate, DqLessThanSetupFlagged) {
  // The paper assumes Δ_DQ >= Δ_DC.
  Circuit c("bad", 1);
  c.add_latch("X", 1, 5.0, 2.0);
  const auto p = c.validate();
  ASSERT_FALSE(p.empty());
  EXPECT_NE(p[0].find("Δ_DQ >= Δ_DC"), std::string::npos);
}

TEST(CircuitValidate, MinDelayGreaterThanMax) {
  Circuit c("bad", 1);
  c.add_latch("X", 1, 1.0, 2.0);
  c.add_latch("Y", 1, 1.0, 2.0);
  c.add_path("X", "Y", 5.0, 9.0);
  EXPECT_FALSE(c.validate().empty());
}

TEST(CircuitValidate, ParallelPathsFlagged) {
  Circuit c("bad", 2);
  c.add_latch("X", 1, 1.0, 2.0);
  c.add_latch("Y", 2, 1.0, 2.0);
  c.add_path("X", "Y", 5.0);
  c.add_path("X", "Y", 7.0);
  const auto p = c.validate();
  ASSERT_FALSE(p.empty());
  EXPECT_NE(p[0].find("parallel"), std::string::npos);
}

TEST(CircuitValidate, NonFiniteElementParameterFlagged) {
  const double bad[] = {std::numeric_limits<double>::quiet_NaN(),
                        std::numeric_limits<double>::infinity(),
                        -std::numeric_limits<double>::infinity()};
  for (const double v : bad) {
    Circuit c("bad", 1);
    c.add_latch("X", 1, v, 2.0);
    const auto p = c.validate();
    ASSERT_FALSE(p.empty());
    EXPECT_NE(p[0].find("non-finite"), std::string::npos);
  }
}

TEST(CircuitValidate, NonFinitePathDelayFlagged) {
  const double bad[] = {std::numeric_limits<double>::quiet_NaN(),
                        std::numeric_limits<double>::infinity()};
  for (const double v : bad) {
    Circuit c("bad", 1);
    c.add_latch("X", 1, 1.0, 2.0);
    c.add_latch("Y", 1, 1.0, 2.0);
    c.add_path("X", "Y", v);
    const auto p = c.validate();
    ASSERT_FALSE(p.empty());
    EXPECT_NE(p[0].find("non-finite"), std::string::npos);
  }
}

TEST(CircuitValidate, NanDoesNotSlipPastOrderingChecks) {
  // NaN compares false against everything, so the sign/ordering checks alone
  // would silently accept it; the finiteness check must fire instead.
  Circuit c("bad", 1);
  c.add_latch("X", 1, 1.0, std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(c.validate().empty());
}

TEST(CircuitValidate, ElementDqMinAboveDq) {
  Circuit c("bad", 1);
  Element e;
  e.name = "X";
  e.phase = 1;
  e.setup = 1.0;
  e.dq = 2.0;
  e.dq_min = 3.0;
  c.add_element(e);
  EXPECT_FALSE(c.validate().empty());
}

TEST(Element, MinDqDefaultsToDq) {
  Element e;
  e.dq = 4.0;
  EXPECT_DOUBLE_EQ(e.min_dq(), 4.0);
  e.dq_min = 1.5;
  EXPECT_DOUBLE_EQ(e.min_dq(), 1.5);
}

TEST(Element, KindNames) {
  EXPECT_STREQ(to_string(ElementKind::kLatch), "latch");
  EXPECT_STREQ(to_string(ElementKind::kFlipFlop), "flipflop");
}

}  // namespace
}  // namespace mintc
