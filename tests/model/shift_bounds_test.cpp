// ShiftTable's phase accessors take 1-based phase indices; debug builds
// assert the range. Death tests only compile where assert() is live —
// RelWithDebInfo defines NDEBUG, so the whole suite is gated.
#include <gtest/gtest.h>

#include "model/timing_view.h"

namespace mintc {
namespace {

ShiftTable two_phase_table() {
  return ShiftTable(symmetric_schedule(2, 100.0, 0.5));
}

TEST(ShiftBounds, InRangeAccessorsWork) {
  const ShiftTable t = two_phase_table();
  EXPECT_EQ(t.num_phases(), 2);
  // All four in-range (i, j) pairs and the phase accessors succeed.
  for (int i = 1; i <= 2; ++i) {
    for (int j = 1; j <= 2; ++j) {
      (void)t.shift(i, j);
      (void)t.at((i - 1) * 2 + (j - 1));
    }
    (void)t.start(i);
    (void)t.width(i);
  }
}

#ifndef NDEBUG

using ShiftBoundsDeathTest = ::testing::Test;

TEST(ShiftBoundsDeathTest, ZeroBasedPhaseIsCaught) {
  const ShiftTable t = two_phase_table();
  // The classic off-by-one this guards: passing a 0-based phase index.
  EXPECT_DEATH((void)t.shift(0, 1), "phase i out of range");
  EXPECT_DEATH((void)t.shift(1, 0), "phase j out of range");
  EXPECT_DEATH((void)t.start(0), "out of range");
  EXPECT_DEATH((void)t.width(0), "out of range");
}

TEST(ShiftBoundsDeathTest, PastTheEndPhaseIsCaught) {
  const ShiftTable t = two_phase_table();
  EXPECT_DEATH((void)t.shift(3, 1), "phase i out of range");
  EXPECT_DEATH((void)t.shift(1, 3), "phase j out of range");
  EXPECT_DEATH((void)t.start(3), "out of range");
  EXPECT_DEATH((void)t.at(4), "flat shift index out of range");
  EXPECT_DEATH((void)t.at(-1), "flat shift index out of range");
}

#endif  // NDEBUG

}  // namespace
}  // namespace mintc
