#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mintc::lp {
namespace {

constexpr double kTol = 1e-6;

TEST(Simplex, TrivialSingleVariable) {
  Model m;
  const int x = m.add_variable("x");
  m.set_objective(x, 1.0);
  m.add_row("lb", {{x, 1.0}}, Sense::kGe, 3.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, kTol);
  EXPECT_NEAR(s.x[0], 3.0, kTol);
}

TEST(Simplex, ClassicTwoVariableMax) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Hillier-Lieberman).
  // Optimum (2, 6), value 36. Cast as minimization of the negative.
  Model m;
  const int x = m.add_variable("x");
  const int y = m.add_variable("y");
  m.set_objective(x, -3.0);
  m.set_objective(y, -5.0);
  m.add_row("r1", {{x, 1.0}}, Sense::kLe, 4.0);
  m.add_row("r2", {{y, 2.0}}, Sense::kLe, 12.0);
  m.add_row("r3", {{x, 3.0}, {y, 2.0}}, Sense::kLe, 18.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, kTol);
  EXPECT_NEAR(s.x[0], 2.0, kTol);
  EXPECT_NEAR(s.x[1], 6.0, kTol);
}

TEST(Simplex, EqualityConstraints) {
  // min x + y  s.t. x + y == 5, x - y == 1  ->  (3, 2).
  Model m;
  const int x = m.add_variable("x");
  const int y = m.add_variable("y");
  m.set_objective(x, 1.0);
  m.set_objective(y, 1.0);
  m.add_row("sum", {{x, 1.0}, {y, 1.0}}, Sense::kEq, 5.0);
  m.add_row("diff", {{x, 1.0}, {y, -1.0}}, Sense::kEq, 1.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, kTol);
  EXPECT_NEAR(s.x[1], 2.0, kTol);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const int x = m.add_variable("x");
  m.add_row("lo", {{x, 1.0}}, Sense::kGe, 5.0);
  m.add_row("hi", {{x, 1.0}}, Sense::kLe, 3.0);
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const int x = m.add_variable("x");
  m.set_objective(x, -1.0);  // minimize -x with x unbounded above
  m.add_row("lo", {{x, 1.0}}, Sense::kGe, 0.0);
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, FreeVariable) {
  // min x  s.t. x >= -7, with x free: optimum -7.
  Model m;
  const int x = m.add_variable("x", -kInf);
  m.set_objective(x, 1.0);
  m.add_row("lo", {{x, 1.0}}, Sense::kGe, -7.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], -7.0, kTol);
}

TEST(Simplex, ShiftedLowerBound) {
  // min x with x in [2.5, inf): optimum 2.5 with no rows at all.
  Model m;
  const int x = m.add_variable("x", 2.5);
  m.set_objective(x, 1.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 2.5, kTol);
}

TEST(Simplex, UpperBoundBecomesRow) {
  // max x with x in [0, 9].
  Model m;
  const int x = m.add_variable("x", 0.0, 9.0);
  m.set_objective(x, -1.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 9.0, kTol);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min y  s.t. -x <= -4 (i.e. x >= 4), y >= x - 10.
  Model m;
  const int x = m.add_variable("x");
  const int y = m.add_variable("y");
  m.set_objective(y, 1.0);
  m.add_row("r1", {{x, -1.0}}, Sense::kLe, -4.0);
  m.add_row("r2", {{y, 1.0}, {x, -1.0}}, Sense::kGe, -10.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, kTol);
  EXPECT_GE(s.x[0], 4.0 - kTol);
}

TEST(Simplex, DegenerateBeale) {
  // Beale's classic cycling example; Bland fallback must terminate it.
  // min -0.75x4 + 150x5 - 0.02x6 + 6x7
  // s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 <= 0
  //      0.50x4 - 90x5 - 0.02x6 + 3x7 <= 0
  //      x6 <= 1;   optimum value -0.05.
  Model m;
  const int x4 = m.add_variable("x4");
  const int x5 = m.add_variable("x5");
  const int x6 = m.add_variable("x6");
  const int x7 = m.add_variable("x7");
  m.set_objective(x4, -0.75);
  m.set_objective(x5, 150.0);
  m.set_objective(x6, -0.02);
  m.set_objective(x7, 6.0);
  m.add_row("r1", {{x4, 0.25}, {x5, -60.0}, {x6, -0.04}, {x7, 9.0}}, Sense::kLe, 0.0);
  m.add_row("r2", {{x4, 0.5}, {x5, -90.0}, {x6, -0.02}, {x7, 3.0}}, Sense::kLe, 0.0);
  m.add_row("r3", {{x6, 1.0}}, Sense::kLe, 1.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, kTol);
}

TEST(Simplex, RedundantEqualityRows) {
  // x + y == 4 stated twice plus their sum: phase 1 must drop redundancy.
  Model m;
  const int x = m.add_variable("x");
  const int y = m.add_variable("y");
  m.set_objective(x, 1.0);
  m.add_row("a", {{x, 1.0}, {y, 1.0}}, Sense::kEq, 4.0);
  m.add_row("b", {{x, 1.0}, {y, 1.0}}, Sense::kEq, 4.0);
  m.add_row("c", {{x, 2.0}, {y, 2.0}}, Sense::kEq, 8.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.0, kTol);
  EXPECT_NEAR(s.x[0] + s.x[1], 4.0, kTol);
}

TEST(Simplex, DualsOnTightRows) {
  // min x1 + 2x2  s.t. x1 + x2 >= 3, x2 >= 1. Optimum (2,1), value 4.
  // Duals: y1 = 1 (first row), y2 = 1 (second row).
  Model m;
  const int x1 = m.add_variable("x1");
  const int x2 = m.add_variable("x2");
  m.set_objective(x1, 1.0);
  m.set_objective(x2, 2.0);
  m.add_row("r1", {{x1, 1.0}, {x2, 1.0}}, Sense::kGe, 3.0);
  m.add_row("r2", {{x2, 1.0}}, Sense::kGe, 1.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, kTol);
  // Strong duality: b'y == c'x.
  EXPECT_NEAR(3.0 * s.duals[0] + 1.0 * s.duals[1], 4.0, kTol);
  EXPECT_NEAR(s.duals[0], 1.0, kTol);
  EXPECT_NEAR(s.duals[1], 1.0, kTol);
}

TEST(Simplex, ActivityAndSlackReported) {
  Model m;
  const int x = m.add_variable("x");
  m.set_objective(x, 1.0);
  m.add_row("lo", {{x, 1.0}}, Sense::kGe, 2.0);
  m.add_row("hi", {{x, 1.0}}, Sense::kLe, 10.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.activity[0], 2.0, kTol);
  EXPECT_NEAR(s.row_slack(m, 0), 0.0, kTol);  // tight
  EXPECT_NEAR(s.row_slack(m, 1), 8.0, kTol);  // slack
}

TEST(Simplex, EmptyModelIsTriviallyOptimal) {
  Model m;
  const Solution s = SimplexSolver().solve(m);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(s.objective, 0.0);
}

TEST(Simplex, StatusNames) {
  EXPECT_STREQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(SolveStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(SolveStatus::kIterLimit), "iteration_limit");
}

TEST(Simplex, BlandFromStartOptionStillSolves) {
  SimplexSolver::Options opt;
  opt.bland_from_start = true;
  Model m;
  const int x = m.add_variable("x");
  const int y = m.add_variable("y");
  m.set_objective(x, -1.0);
  m.set_objective(y, -1.0);
  m.add_row("r", {{x, 1.0}, {y, 1.0}}, Sense::kLe, 10.0);
  const Solution s = SimplexSolver(opt).solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -10.0, kTol);
}

TEST(Simplex, IterLimitReported) {
  SimplexSolver::Options opt;
  opt.max_pivots = 1;
  Model m;
  const int x = m.add_variable("x");
  const int y = m.add_variable("y");
  m.set_objective(x, 1.0);
  m.set_objective(y, 1.0);
  m.add_row("r1", {{x, 1.0}, {y, 2.0}}, Sense::kGe, 4.0);
  m.add_row("r2", {{x, 2.0}, {y, 1.0}}, Sense::kGe, 4.0);
  const Solution s = SimplexSolver(opt).solve(m);
  EXPECT_EQ(s.status, SolveStatus::kIterLimit);
}

}  // namespace
}  // namespace mintc::lp
