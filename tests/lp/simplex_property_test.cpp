// Randomized cross-check of the simplex solver against brute-force vertex
// enumeration. For small LPs (n variables, m rows, all-<= with nonneg
// variables), every vertex of the feasible polytope is the solution of n
// tight constraints chosen among rows and variable bounds; enumerating all
// combinations and taking the best feasible point gives an independent
// optimum to compare against.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <optional>
#include <random>
#include <vector>

#include "lp/simplex.h"

namespace mintc::lp {
namespace {

// Solve a 2-variable LP by vertex enumeration.
// Rows: a1*x + a2*y <= b. Variables nonnegative. Minimize c1*x + c2*y.
struct TinyLp {
  std::vector<std::array<double, 3>> rows;  // a1, a2, b
  double c1 = 0.0, c2 = 0.0;
};

std::optional<double> brute_force(const TinyLp& lp) {
  // Candidate tight pairs: every pair among {rows, x=0, y=0}.
  std::vector<std::array<double, 3>> all = lp.rows;
  all.push_back({1.0, 0.0, 0.0});  // x = 0 (as x <= 0 combined with x >= 0)
  all.push_back({0.0, 1.0, 0.0});  // y = 0
  const auto feasible = [&](double x, double y) {
    if (x < -1e-7 || y < -1e-7) return false;
    for (const auto& r : lp.rows) {
      if (r[0] * x + r[1] * y > r[2] + 1e-7) return false;
    }
    return true;
  };
  std::optional<double> best;
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      const double det = all[i][0] * all[j][1] - all[i][1] * all[j][0];
      if (std::fabs(det) < 1e-9) continue;
      const double x = (all[i][2] * all[j][1] - all[i][1] * all[j][2]) / det;
      const double y = (all[i][0] * all[j][2] - all[i][2] * all[j][0]) / det;
      if (!feasible(x, y)) continue;
      const double v = lp.c1 * x + lp.c2 * y;
      if (!best || v < *best) best = v;
    }
  }
  return best;
}

TEST(SimplexProperty, MatchesBruteForceOnRandom2dLps) {
  std::mt19937_64 rng(12345);
  std::uniform_real_distribution<double> coeff(-5.0, 5.0);
  std::uniform_real_distribution<double> rhs(1.0, 20.0);
  std::uniform_int_distribution<int> nrows(1, 6);

  int solved = 0;
  for (int trial = 0; trial < 200; ++trial) {
    TinyLp lp;
    const int m = nrows(rng);
    for (int r = 0; r < m; ++r) lp.rows.push_back({coeff(rng), coeff(rng), rhs(rng)});
    // Nonnegative objective keeps the problem bounded (variables >= 0).
    lp.c1 = std::fabs(coeff(rng));
    lp.c2 = std::fabs(coeff(rng));

    Model model;
    const int x = model.add_variable("x");
    const int y = model.add_variable("y");
    model.set_objective(x, lp.c1);
    model.set_objective(y, lp.c2);
    for (size_t r = 0; r < lp.rows.size(); ++r) {
      model.add_row("r" + std::to_string(r), {{x, lp.rows[r][0]}, {y, lp.rows[r][1]}},
                    Sense::kLe, lp.rows[r][2]);
    }
    const Solution s = SimplexSolver().solve(model);
    const std::optional<double> expect = brute_force(lp);
    // All-<= rows with positive rhs admit the origin: always feasible.
    ASSERT_TRUE(expect.has_value());
    ASSERT_EQ(s.status, SolveStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(s.objective, *expect, 1e-5) << "trial " << trial;
    ++solved;
  }
  EXPECT_EQ(solved, 200);
}

TEST(SimplexProperty, SolutionAlwaysFeasibleOnRandomMixedLps) {
  // Random LPs with mixed senses; whenever the solver claims optimality the
  // returned point must satisfy the model, and the objective must match c'x.
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> coeff(-4.0, 4.0);
  std::uniform_real_distribution<double> rhs(-10.0, 10.0);
  std::uniform_int_distribution<int> nvars(2, 5);
  std::uniform_int_distribution<int> nrows(1, 8);
  std::uniform_int_distribution<int> sense(0, 2);

  int optimal_count = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Model m;
    const int n = nvars(rng);
    for (int j = 0; j < n; ++j) {
      const int v = m.add_variable("v" + std::to_string(j));
      m.set_objective(v, std::fabs(coeff(rng)) + 0.1);  // bounded below
    }
    const int k = nrows(rng);
    for (int r = 0; r < k; ++r) {
      std::vector<LinearTerm> terms;
      for (int j = 0; j < n; ++j) terms.push_back({j, coeff(rng)});
      m.add_row("r" + std::to_string(r), std::move(terms),
                static_cast<Sense>(sense(rng)), rhs(rng));
    }
    const Solution s = SimplexSolver().solve(m);
    if (s.status != SolveStatus::kOptimal) continue;
    ++optimal_count;
    EXPECT_TRUE(m.is_feasible(s.x, 1e-5)) << "trial " << trial;
    double cx = 0.0;
    for (int j = 0; j < n; ++j) cx += m.variable(j).objective * s.x[static_cast<size_t>(j)];
    EXPECT_NEAR(cx, s.objective, 1e-6) << "trial " << trial;
  }
  // Most random instances should be solvable; guard against silent skips.
  EXPECT_GT(optimal_count, 100);
}

TEST(SimplexProperty, StrongDualityOnRandomFeasibleLps) {
  // For >=-form LPs (min c'x, Ax >= b, x >= 0, c >= 0): if optimal, then
  // b'y == c'x and duals are nonnegative.
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> coeff(0.1, 4.0);
  std::uniform_real_distribution<double> rhs(0.5, 10.0);

  for (int trial = 0; trial < 100; ++trial) {
    Model m;
    const int n = 3;
    for (int j = 0; j < n; ++j) {
      const int v = m.add_variable("v" + std::to_string(j));
      m.set_objective(v, coeff(rng));
    }
    const int k = 4;
    std::vector<double> b;
    for (int r = 0; r < k; ++r) {
      std::vector<LinearTerm> terms;
      for (int j = 0; j < n; ++j) terms.push_back({j, coeff(rng)});
      b.push_back(rhs(rng));
      m.add_row("r" + std::to_string(r), std::move(terms), Sense::kGe, b.back());
    }
    const Solution s = SimplexSolver().solve(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal) << "trial " << trial;
    double by = 0.0;
    for (int r = 0; r < k; ++r) {
      EXPECT_GE(s.duals[static_cast<size_t>(r)], -1e-6) << "trial " << trial;
      by += b[static_cast<size_t>(r)] * s.duals[static_cast<size_t>(r)];
    }
    EXPECT_NEAR(by, s.objective, 1e-5) << "trial " << trial;
  }
}

}  // namespace
}  // namespace mintc::lp
