#include "lp/model.h"

#include <gtest/gtest.h>

namespace mintc::lp {
namespace {

TEST(LpModel, AddVariablesAndRows) {
  Model m;
  const int x = m.add_variable("x");
  const int y = m.add_variable("y", 1.0, 5.0);
  EXPECT_EQ(m.num_variables(), 2);
  EXPECT_EQ(m.variable(x).name, "x");
  EXPECT_EQ(m.variable(y).lower, 1.0);
  EXPECT_EQ(m.variable(y).upper, 5.0);

  m.add_row("r0", {{x, 1.0}, {y, 2.0}}, Sense::kLe, 10.0);
  EXPECT_EQ(m.num_rows(), 1);
  EXPECT_EQ(m.row(0).name, "r0");
}

TEST(LpModel, RowNormalizationMergesDuplicates) {
  Model m;
  const int x = m.add_variable("x");
  m.add_row("r", {{x, 1.0}, {x, 2.0}}, Sense::kGe, 0.0);
  ASSERT_EQ(m.row(0).terms.size(), 1u);
  EXPECT_DOUBLE_EQ(m.row(0).terms[0].coeff, 3.0);
}

TEST(LpModel, RowNormalizationDropsZeros) {
  Model m;
  const int x = m.add_variable("x");
  const int y = m.add_variable("y");
  m.add_row("r", {{x, 1.0}, {y, 1.0}, {y, -1.0}}, Sense::kEq, 0.0);
  ASSERT_EQ(m.row(0).terms.size(), 1u);
  EXPECT_EQ(m.row(0).terms[0].var, x);
}

TEST(LpModel, RowActivity) {
  Model m;
  const int x = m.add_variable("x");
  const int y = m.add_variable("y");
  m.add_row("r", {{x, 2.0}, {y, -1.0}}, Sense::kLe, 0.0);
  EXPECT_DOUBLE_EQ(m.row_activity(0, {3.0, 4.0}), 2.0);
}

TEST(LpModel, FeasibilityChecksBoundsAndRows) {
  Model m;
  const int x = m.add_variable("x", 0.0, 2.0);
  m.add_row("r", {{x, 1.0}}, Sense::kGe, 1.0);
  EXPECT_TRUE(m.is_feasible({1.5}, 1e-9));
  EXPECT_FALSE(m.is_feasible({0.5}, 1e-9));   // row violated
  EXPECT_FALSE(m.is_feasible({2.5}, 1e-9));   // upper bound violated
  EXPECT_FALSE(m.is_feasible({-0.5}, 1e-9));  // lower bound violated
}

TEST(LpModel, FeasibilityEqualityRow) {
  Model m;
  const int x = m.add_variable("x");
  m.add_row("r", {{x, 1.0}}, Sense::kEq, 3.0);
  EXPECT_TRUE(m.is_feasible({3.0}, 1e-9));
  EXPECT_FALSE(m.is_feasible({3.1}, 1e-9));
}

TEST(LpModel, ToStringRendersAlgebra) {
  Model m;
  const int x = m.add_variable("x");
  const int y = m.add_variable("y");
  m.set_objective(x, 1.0);
  m.add_row("budget", {{x, 1.0}, {y, -2.0}}, Sense::kLe, 7.0);
  const std::string s = m.to_string();
  EXPECT_NE(s.find("minimize x"), std::string::npos);
  EXPECT_NE(s.find("[budget]"), std::string::npos);
  EXPECT_NE(s.find("x - 2*y <= 7"), std::string::npos);
}

TEST(LpModel, SenseNames) {
  EXPECT_STREQ(to_string(Sense::kLe), "<=");
  EXPECT_STREQ(to_string(Sense::kGe), ">=");
  EXPECT_STREQ(to_string(Sense::kEq), "==");
}

}  // namespace
}  // namespace mintc::lp
