// Stress tests for the simplex solver: equality systems cross-checked
// against Gaussian elimination, scaling robustness, and SMO-shaped LPs
// (the ±1/topological constraint matrices the paper highlights).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <random>
#include <vector>

#include "lp/simplex.h"

namespace mintc::lp {
namespace {

// Solve a dense square linear system by Gaussian elimination with partial
// pivoting; returns false if singular.
bool gauss_solve(std::vector<std::vector<double>> a, std::vector<double> b,
                 std::vector<double>& x) {
  const size_t n = b.size();
  for (size_t col = 0; col < n; ++col) {
    size_t piv = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[piv][col])) piv = r;
    }
    if (std::fabs(a[piv][col]) < 1e-10) return false;
    std::swap(a[piv], a[col]);
    std::swap(b[piv], b[col]);
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a[r][col] / a[col][col];
      for (size_t c2 = col; c2 < n; ++c2) a[r][c2] -= f * a[col][c2];
      b[r] -= f * b[col];
    }
  }
  x.resize(n);
  for (size_t i = 0; i < n; ++i) x[i] = b[i] / a[i][i];
  return true;
}

TEST(SimplexStress, EqualitySystemsMatchGaussianElimination) {
  // Square nonsingular Ax == b with x free: the LP's feasible set is one
  // point, so any objective returns the Gaussian solution.
  std::mt19937_64 rng(31);
  std::uniform_real_distribution<double> coeff(-3.0, 3.0);
  int checked = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 2 + static_cast<size_t>(trial % 4);
    std::vector<std::vector<double>> a(n, std::vector<double>(n));
    std::vector<double> b(n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) a[i][j] = coeff(rng);
      b[i] = coeff(rng);
    }
    std::vector<double> expect;
    if (!gauss_solve(a, b, expect)) continue;  // singular draw

    Model m;
    for (size_t j = 0; j < n; ++j) {
      const int v = m.add_variable("x" + std::to_string(j), -kInf);
      m.set_objective(v, coeff(rng));
    }
    for (size_t i = 0; i < n; ++i) {
      std::vector<LinearTerm> terms;
      for (size_t j = 0; j < n; ++j) terms.push_back({static_cast<int>(j), a[i][j]});
      m.add_row("eq" + std::to_string(i), std::move(terms), Sense::kEq, b[i]);
    }
    const Solution s = SimplexSolver().solve(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal) << "trial " << trial;
    for (size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(s.x[j], expect[j], 1e-6) << "trial " << trial << " var " << j;
    }
    ++checked;
  }
  EXPECT_GT(checked, 80);
}

TEST(SimplexStress, ScaleInvarianceOfTheOptimum) {
  // Scaling all RHS values scales the optimum linearly (SMO LPs are
  // homogeneous in time units: ns vs ps must not matter).
  Model base;
  const int x = base.add_variable("x");
  const int y = base.add_variable("y");
  base.set_objective(x, 1.0);
  base.add_row("r1", {{x, 1.0}, {y, -1.0}}, Sense::kGe, 3.0);
  base.add_row("r2", {{y, 1.0}}, Sense::kGe, 2.0);
  const double v1 = SimplexSolver().solve(base).objective;

  Model scaled;
  const int xs = scaled.add_variable("x");
  const int ys = scaled.add_variable("y");
  scaled.set_objective(xs, 1.0);
  scaled.add_row("r1", {{xs, 1.0}, {ys, -1.0}}, Sense::kGe, 3000.0);
  scaled.add_row("r2", {{ys, 1.0}}, Sense::kGe, 2000.0);
  const double v2 = SimplexSolver().solve(scaled).objective;
  EXPECT_NEAR(v2, 1000.0 * v1, 1e-6);
}

TEST(SimplexStress, TopologicalMatricesLikeSmo) {
  // Random difference-constraint systems (coefficients in {-1, 0, +1} plus a
  // period variable), the structure Section VI points out. Feasibility and
  // optimality must be numerically clean.
  std::mt19937_64 rng(77);
  std::uniform_real_distribution<double> rhs(0.5, 30.0);
  std::uniform_int_distribution<int> pick(0, 7);
  for (int trial = 0; trial < 50; ++trial) {
    Model m;
    const int tc = m.add_variable("Tc");
    m.set_objective(tc, 1.0);
    std::vector<int> vars;
    for (int j = 0; j < 8; ++j) vars.push_back(m.add_variable("d" + std::to_string(j)));
    for (int r = 0; r < 16; ++r) {
      const int a = pick(rng);
      int b = pick(rng);
      if (a == b) b = (b + 1) % 8;
      // d_a - d_b + Tc >= delta  — an L2R-shaped row.
      m.add_row("p" + std::to_string(r),
                {{vars[static_cast<size_t>(a)], 1.0},
                 {vars[static_cast<size_t>(b)], -1.0},
                 {tc, 1.0}},
                Sense::kGe, rhs(rng));
    }
    const Solution s = SimplexSolver().solve(m);
    ASSERT_EQ(s.status, SolveStatus::kOptimal) << trial;
    EXPECT_TRUE(m.is_feasible(s.x, 1e-6)) << trial;
    EXPECT_GE(s.objective, 0.0);
  }
}

TEST(SimplexStress, ManyRedundantRowsStayConsistent) {
  Model m;
  const int x = m.add_variable("x");
  m.set_objective(x, 1.0);
  for (int r = 0; r < 40; ++r) {
    m.add_row("r" + std::to_string(r), {{x, 1.0 + 0.0 * r}}, Sense::kGe, 5.0);
  }
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-7);
}

TEST(SimplexStress, AlternatingTightLoop) {
  // A chain of equalities x_{i+1} == x_i + 1 with x_0 == 0: unique point,
  // exercises artificial-variable handling on long equality chains.
  Model m;
  const int n = 30;
  std::vector<int> v;
  for (int i = 0; i < n; ++i) v.push_back(m.add_variable("x" + std::to_string(i), -kInf));
  m.set_objective(v.back(), 1.0);
  m.add_row("anchor", {{v[0], 1.0}}, Sense::kEq, 0.0);
  for (int i = 0; i + 1 < n; ++i) {
    m.add_row("c" + std::to_string(i),
              {{v[static_cast<size_t>(i + 1)], 1.0}, {v[static_cast<size_t>(i)], -1.0}},
              Sense::kEq, 1.0);
  }
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, n - 1.0, 1e-6);
  EXPECT_NEAR(s.x[static_cast<size_t>(n / 2)], n / 2, 1e-6);
}

}  // namespace
}  // namespace mintc::lp
