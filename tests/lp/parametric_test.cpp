#include "lp/parametric.h"

#include <gtest/gtest.h>

namespace mintc::lp {
namespace {

// z*(θ) = max(2, θ): min x s.t. x >= 2, x >= θ.
Model hinge_model(double theta) {
  Model m;
  const int x = m.add_variable("x");
  m.set_objective(x, 1.0);
  m.add_row("floor", {{x, 1.0}}, Sense::kGe, 2.0);
  m.add_row("theta", {{x, 1.0}}, Sense::kGe, theta);
  return m;
}

TEST(Parametric, RecoversHingeSegments) {
  const SimplexSolver solver;
  const ParametricResult r = sweep_parameter(hinge_model, 0.0, 4.0, 9, solver);
  ASSERT_EQ(r.points.size(), 9u);
  EXPECT_NEAR(r.points.front().objective, 2.0, 1e-7);  // θ=0 -> 2
  EXPECT_NEAR(r.points.back().objective, 4.0, 1e-7);   // θ=4 -> 4
  // Two segments: slope 0 then slope 1, breaking at θ=2.
  ASSERT_EQ(r.segments.size(), 2u);
  EXPECT_NEAR(r.segments[0].slope, 0.0, 1e-6);
  EXPECT_NEAR(r.segments[1].slope, 1.0, 1e-6);
  EXPECT_NEAR(r.segments[0].theta_end, 2.0, 1e-6);
  EXPECT_NEAR(r.segments[1].theta_begin, 2.0, 1e-6);
}

TEST(Parametric, SingleSegmentWhenLinear) {
  const SimplexSolver solver;
  const auto build = [](double theta) {
    Model m;
    const int x = m.add_variable("x");
    m.set_objective(x, 1.0);
    m.add_row("t", {{x, 1.0}}, Sense::kGe, 3.0 * theta);
    return m;
  };
  const ParametricResult r = sweep_parameter(build, 1.0, 5.0, 5, solver);
  ASSERT_EQ(r.segments.size(), 1u);
  EXPECT_NEAR(r.segments[0].slope, 3.0, 1e-6);
}

TEST(Parametric, DegenerateRangeReturnsEmpty) {
  const SimplexSolver solver;
  EXPECT_TRUE(sweep_parameter(hinge_model, 4.0, 4.0, 5, solver).points.empty());
  EXPECT_TRUE(sweep_parameter(hinge_model, 0.0, 4.0, 1, solver).points.empty());
}

TEST(Parametric, ObjectiveIsConvexInRhs) {
  const SimplexSolver solver;
  const ParametricResult r = sweep_parameter(hinge_model, 0.0, 8.0, 17, solver);
  // Slopes of consecutive segments must be nondecreasing (convexity).
  for (size_t i = 1; i < r.segments.size(); ++i) {
    EXPECT_GE(r.segments[i].slope, r.segments[i - 1].slope - 1e-9);
  }
}

}  // namespace
}  // namespace mintc::lp
