// Equivalence suite for the TimingView refactor: the view-based engines
// must produce BIT-IDENTICAL results to the pre-refactor pointer-chasing
// loops. The legacy implementations are replicated here verbatim (same
// iteration order, same floating-point association: the view precomputes
// Δ_DQ + Δ_ij, so the reference adds them parenthesized) for all four
// update schemes, and compared with exact == on the paper circuits and on
// 200 seeded fuzzer circuits.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "check/differential.h"
#include "check/fuzzer.h"
#include "circuits/appendix_fig1.h"
#include "circuits/example1.h"
#include "circuits/example2.h"
#include "circuits/gaas.h"
#include "graph/scc.h"
#include "opt/mlp.h"
#include "sta/fixpoint.h"

namespace mintc::sta {
namespace {

// ---- Pre-refactor reference implementation (pointer-chasing) -------------

double legacy_departure_update(const Circuit& circuit, const ClockSchedule& schedule,
                               const std::vector<double>& departure, int i) {
  const Element& e = circuit.element(i);
  if (!e.is_latch()) return 0.0;
  double best = 0.0;
  for (const int pi : circuit.fanin(i)) {
    const CombPath& path = circuit.path(pi);
    const Element& src = circuit.element(path.from);
    const double a = departure[static_cast<size_t>(path.from)] + (src.dq + path.delay) +
                     schedule.shift(src.phase, e.phase);
    if (a > best) best = a;
  }
  return best;
}

double legacy_divergence_bound(const Circuit& circuit, const ClockSchedule& schedule) {
  double bound = std::fabs(schedule.cycle) * (circuit.num_phases() + 1) + 1.0;
  for (const Element& e : circuit.elements()) bound += e.dq;
  for (const CombPath& p : circuit.paths()) bound += p.delay;
  return bound;
}

FixpointResult legacy_compute_departures(const Circuit& circuit, const ClockSchedule& schedule,
                                         std::vector<double> initial,
                                         const FixpointOptions& options) {
  const int l = circuit.num_elements();
  FixpointResult res;
  res.departure = std::move(initial);
  // Resolve the auto-scaling budget exactly as the engine does, so both
  // sides run under the same sweep cap.
  const int max_sweeps = options.effective_max_sweeps(l);
  const double bound = legacy_divergence_bound(circuit, schedule);
  const auto diverged = [&](double v) { return v > bound; };
  const auto relax = [&](int i) {
    ++res.updates;
    return legacy_departure_update(circuit, schedule, res.departure, i);
  };

  switch (options.scheme) {
    case UpdateScheme::kJacobi: {
      std::vector<double> next(static_cast<size_t>(l), 0.0);
      for (res.sweeps = 0; res.sweeps < max_sweeps; ++res.sweeps) {
        bool changed = false;
        for (int i = 0; i < l; ++i) {
          next[static_cast<size_t>(i)] = relax(i);
          if (std::fabs(next[static_cast<size_t>(i)] - res.departure[static_cast<size_t>(i)]) >
              options.eps) {
            changed = true;
          }
          if (diverged(next[static_cast<size_t>(i)])) {
            res.diverged = true;
            std::copy(next.begin(), next.begin() + i + 1, res.departure.begin());
            return res;
          }
        }
        res.departure.swap(next);
        if (!changed) {
          res.converged = true;
          ++res.sweeps;
          return res;
        }
      }
      return res;
    }
    case UpdateScheme::kGaussSeidel: {
      for (res.sweeps = 0; res.sweeps < max_sweeps; ++res.sweeps) {
        bool changed = false;
        for (int i = 0; i < l; ++i) {
          const double v = relax(i);
          if (std::fabs(v - res.departure[static_cast<size_t>(i)]) > options.eps) changed = true;
          res.departure[static_cast<size_t>(i)] = v;
          if (diverged(v)) {
            res.diverged = true;
            return res;
          }
        }
        if (!changed) {
          res.converged = true;
          ++res.sweeps;
          return res;
        }
      }
      return res;
    }
    case UpdateScheme::kSccOrdered: {
      const graph::SccResult scc = graph::strongly_connected_components(circuit.latch_graph());
      for (int comp = scc.num_components - 1; comp >= 0; --comp) {
        const std::vector<int>& members = scc.members[static_cast<size_t>(comp)];
        int local_sweeps = 0;
        while (local_sweeps < max_sweeps) {
          bool changed = false;
          for (const int i : members) {
            const double v = relax(i);
            if (std::fabs(v - res.departure[static_cast<size_t>(i)]) > options.eps) {
              changed = true;
            }
            res.departure[static_cast<size_t>(i)] = v;
            if (diverged(v)) {
              res.diverged = true;
              return res;
            }
          }
          ++local_sweeps;
          if (!changed) break;
          if (!scc.nontrivial[static_cast<size_t>(comp)]) break;
        }
        res.sweeps = std::max(res.sweeps, local_sweeps);
        if (local_sweeps >= max_sweeps) return res;
      }
      res.converged = true;
      return res;
    }
    case UpdateScheme::kEventDriven: {
      std::vector<bool> queued(static_cast<size_t>(l), true);
      std::vector<int> work;
      work.reserve(static_cast<size_t>(l));
      for (int i = 0; i < l; ++i) work.push_back(i);
      const long max_updates = static_cast<long>(max_sweeps) * std::max(1, l);
      size_t head = 0;
      while (head < work.size()) {
        if (static_cast<long>(res.updates) >= max_updates) return res;
        const int i = work[head++];
        queued[static_cast<size_t>(i)] = false;
        const double v = relax(i);
        if (std::fabs(v - res.departure[static_cast<size_t>(i)]) <= options.eps) continue;
        res.departure[static_cast<size_t>(i)] = v;
        if (diverged(v)) {
          res.diverged = true;
          return res;
        }
        for (const int pe : circuit.fanout(i)) {
          const int dst = circuit.path(pe).to;
          if (!queued[static_cast<size_t>(dst)]) {
            queued[static_cast<size_t>(dst)] = true;
            work.push_back(dst);
          }
        }
        if (head > 4096 && head * 2 > work.size()) {
          work.erase(work.begin(), work.begin() + static_cast<long>(head));
          head = 0;
        }
      }
      res.converged = true;
      res.sweeps = (res.updates + l - 1) / std::max(1, l);
      return res;
    }
  }
  return res;
}

// ---- Comparison harness --------------------------------------------------

constexpr UpdateScheme kAllSchemes[] = {UpdateScheme::kJacobi, UpdateScheme::kGaussSeidel,
                                        UpdateScheme::kEventDriven, UpdateScheme::kSccOrdered};

void expect_bit_identical(const Circuit& circuit, const ClockSchedule& schedule) {
  const std::vector<double> zero(static_cast<size_t>(circuit.num_elements()), 0.0);
  for (const UpdateScheme scheme : kAllSchemes) {
    FixpointOptions opt;
    opt.scheme = scheme;
    const FixpointResult legacy = legacy_compute_departures(circuit, schedule, zero, opt);
    const FixpointResult view = compute_departures(circuit, schedule, zero, opt);
    ASSERT_EQ(view.converged, legacy.converged)
        << circuit.name() << " " << to_string(scheme);
    ASSERT_EQ(view.diverged, legacy.diverged) << circuit.name() << " " << to_string(scheme);
    EXPECT_EQ(view.sweeps, legacy.sweeps) << circuit.name() << " " << to_string(scheme);
    EXPECT_EQ(view.updates, legacy.updates) << circuit.name() << " " << to_string(scheme);
    ASSERT_EQ(view.departure.size(), legacy.departure.size());
    for (size_t i = 0; i < legacy.departure.size(); ++i) {
      // Exact ==, not NEAR: the refactor must not change a single bit.
      EXPECT_EQ(view.departure[i], legacy.departure[i])
          << circuit.name() << " " << to_string(scheme) << " element " << i;
    }
  }
}

// Solve for the circuit's optimal schedule; also exercise a relaxed copy so
// both tight (zero-slack loop) and slack trajectories are covered.
void check_circuit_at_optimum(const Circuit& circuit) {
  const auto mlp = opt::minimize_cycle_time(circuit);
  ASSERT_TRUE(mlp) << circuit.name() << ": " << mlp.error().to_string();
  expect_bit_identical(circuit, mlp->schedule);
  expect_bit_identical(circuit, mlp->schedule.scaled(1.25));
}

TEST(ViewEquivalence, Example1) {
  check_circuit_at_optimum(circuits::example1(80.0));
  check_circuit_at_optimum(circuits::example1(120.0));
}

TEST(ViewEquivalence, Example2) { check_circuit_at_optimum(circuits::example2()); }

TEST(ViewEquivalence, Gaas) { check_circuit_at_optimum(circuits::gaas_datapath()); }

TEST(ViewEquivalence, Appendix) { check_circuit_at_optimum(circuits::appendix_fig1()); }

TEST(ViewEquivalence, DivergingScheduleAgrees) {
  // A schedule far below the loop bound must diverge identically (same
  // detection sweep, same partial departures).
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule sch(10.0, {0.0, 8.0}, {8.0, 2.0});
  const std::vector<double> zero(4, 0.0);
  for (const UpdateScheme scheme : kAllSchemes) {
    FixpointOptions opt;
    opt.scheme = scheme;
    const FixpointResult legacy = legacy_compute_departures(c, sch, zero, opt);
    const FixpointResult view = compute_departures(c, sch, zero, opt);
    ASSERT_EQ(view.diverged, legacy.diverged) << to_string(scheme);
    for (size_t i = 0; i < legacy.departure.size(); ++i) {
      EXPECT_EQ(view.departure[i], legacy.departure[i]) << to_string(scheme);
    }
  }
}

TEST(ViewEquivalence, FuzzCircuitsBitMatchLegacy) {
  // 200 deterministic fuzzer circuits; every feasible one must bit-match
  // across all four schemes at its optimum and at a relaxed schedule.
  int compared = 0;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    const Circuit circuit = check::fuzz_circuit(seed);
    const auto mlp = opt::minimize_cycle_time(circuit);
    if (!mlp) continue;  // infeasible draws carry no fixpoint to compare
    expect_bit_identical(circuit, mlp->schedule);
    expect_bit_identical(circuit, mlp->schedule.scaled(1.25));
    ++compared;
  }
  // The fuzzer's draw mix keeps most circuits feasible (138/200 at the time
  // of writing); guard against the comparison silently vanishing.
  EXPECT_GE(compared, 100) << "fuzzer feasibility collapsed; suite lost its teeth";
}

TEST(ViewEquivalence, FuzzCircuitsPassDifferentialOracle) {
  // The cross-engine agreement matrix (simplex vs graph solver vs fixpoint
  // schemes vs incremental vs token sim) over the same 200 fuzz seeds, all
  // engines now running on the TimingView kernels.
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    const Circuit circuit = check::fuzz_circuit(seed);
    const check::DifferentialReport rep = check::check_circuit(circuit, seed);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ":\n" << rep.to_string();
  }
}

}  // namespace
}  // namespace mintc::sta
