// Equivalence suite for the incremental AnalysisSession: over 200 seeded
// fuzzer circuits, drive one session through the four edit families the
// ISSUE contract names — single-delay edit, schedule slide, corner swap,
// structural edit forcing a cold fallback — and assert after every step
// that analyze() reproduces a fresh sta::check_schedule of the session's
// current circuit/schedule BIT-identically (departures, slacks, worst-case
// records), then rewind the whole edit history via undo_to(0) and require
// the original report again.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "check/fuzzer.h"
#include "opt/mlp.h"
#include "sta/analysis.h"
#include "sta/corners.h"
#include "sta/session.h"

namespace mintc::check {
namespace {

void expect_reports_identical(const sta::TimingReport& got, const sta::TimingReport& want,
                              uint64_t seed, const char* leg) {
  ASSERT_EQ(got.feasible, want.feasible) << "seed " << seed << " " << leg;
  ASSERT_EQ(got.schedule_ok, want.schedule_ok) << "seed " << seed << " " << leg;
  ASSERT_EQ(got.converged, want.converged) << "seed " << seed << " " << leg;
  ASSERT_EQ(got.setup_ok, want.setup_ok) << "seed " << seed << " " << leg;
  ASSERT_EQ(got.hold_ok, want.hold_ok) << "seed " << seed << " " << leg;
  ASSERT_EQ(got.elements.size(), want.elements.size()) << "seed " << seed << " " << leg;
  for (size_t i = 0; i < want.elements.size(); ++i) {
    // Exact ==: the session's warm path must land on the same least
    // fixpoint to the last bit, not merely within a tolerance.
    ASSERT_EQ(got.elements[i].departure, want.elements[i].departure)
        << "seed " << seed << " " << leg << " element " << i;
    ASSERT_EQ(got.elements[i].arrival, want.elements[i].arrival)
        << "seed " << seed << " " << leg << " element " << i;
    ASSERT_EQ(got.elements[i].setup_slack, want.elements[i].setup_slack)
        << "seed " << seed << " " << leg << " element " << i;
    ASSERT_EQ(got.elements[i].hold_slack, want.elements[i].hold_slack)
        << "seed " << seed << " " << leg << " element " << i;
  }
  ASSERT_EQ(got.worst_setup_slack, want.worst_setup_slack) << "seed " << seed << " " << leg;
  ASSERT_EQ(got.worst_setup_element, want.worst_setup_element) << "seed " << seed << " " << leg;
  ASSERT_EQ(got.worst_hold_slack, want.worst_hold_slack) << "seed " << seed << " " << leg;
  ASSERT_EQ(got.worst_hold_element, want.worst_hold_element) << "seed " << seed << " " << leg;
}

TEST(SessionEquivalence, FuzzCircuitsBitMatchFreshAnalysisAcrossEditFamilies) {
  int compared = 0;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    const Circuit circuit = fuzz_circuit(seed);
    const auto mlp = opt::minimize_cycle_time(circuit);
    if (!mlp) continue;  // infeasible draws carry no schedule to analyze
    if (circuit.num_paths() == 0) continue;
    sta::AnalysisOptions options;
    options.check_hold = true;
    const ClockSchedule relaxed = mlp->schedule.scaled(1.25);

    sta::AnalysisSession session(circuit, relaxed, options);
    const sta::TimingReport original = session.analyze();  // copy for the undo leg
    expect_reports_identical(original, sta::check_schedule(circuit, relaxed, options), seed,
                             "cold");

    // 1. Single-delay edit (increase: warm-start eligible).
    const int p = static_cast<int>(seed % static_cast<uint64_t>(circuit.num_paths()));
    session.set_path_delay(p, session.circuit().path(p).delay * 1.05 + 0.01);
    expect_reports_identical(
        session.analyze(),
        sta::check_schedule(session.circuit(), session.schedule(), options), seed,
        "delay-edit");

    // 2. Schedule slide (shrinking the schedule scales every shift up:
    //    warm; the result must still match a fresh solve exactly).
    session.set_schedule(relaxed.scaled(0.98));
    expect_reports_identical(
        session.analyze(),
        sta::check_schedule(session.circuit(), session.schedule(), options), seed,
        "schedule-slide");

    // 3. Corner swap: derating composes from the pristine circuit, so the
    //    reference is derate(original) under the slid schedule.
    session.apply_derating(1.05, 0.95);
    expect_reports_identical(
        session.analyze(),
        sta::check_schedule(sta::derate(circuit, {"slow", 1.05, 0.95}), session.schedule(),
                            options),
        seed, "corner-swap");

    // 4. Structural edit: forces a view rebuild + cold solve.
    const long cold_before = session.counters().cold_fallbacks;
    session.remove_path(session.circuit().num_paths() - 1);
    expect_reports_identical(
        session.analyze(),
        sta::check_schedule(session.circuit(), session.schedule(), options), seed,
        "structural");
    EXPECT_GT(session.counters().cold_fallbacks, cold_before)
        << "seed " << seed << ": structural edit must cold-start";

    // 5. Full rewind: the undo log must restore the original circuit AND
    //    schedule, and re-analysis must reproduce the first report.
    session.undo_to(0);
    expect_reports_identical(session.analyze(), original, seed, "undo-rewind");
    ++compared;
  }
  // Most fuzzer draws are feasible; guard against this suite silently
  // comparing nothing.
  EXPECT_GE(compared, 100) << "fuzzer feasibility collapsed; suite lost its teeth";
}

}  // namespace
}  // namespace mintc::check
