// The differential oracle, the shrinker and the fuzzer — plus regression
// pins for the bugs the harness has already caught.
#include "check/differential.h"

#include <gtest/gtest.h>

#include "check/fuzzer.h"
#include "check/shrink.h"
#include "circuits/appendix_fig1.h"
#include "circuits/example1.h"
#include "circuits/example2.h"
#include "circuits/gaas.h"
#include "circuits/synthetic.h"
#include "opt/graph_solver.h"
#include "opt/mlp.h"
#include "parser/lct.h"
#include "sta/fixpoint.h"

namespace mintc::check {
namespace {

TEST(Differential, PassesOnEveryNamedCircuit) {
  for (const double d41 : {0.0, 40.0, 80.0, 120.0, 160.0}) {
    const DifferentialReport rep = check_circuit(circuits::example1(d41), 1);
    EXPECT_TRUE(rep.ok()) << "example1(" << d41 << "):\n" << rep.to_string();
    EXPECT_TRUE(rep.feasible);
  }
  for (const Circuit& c : {circuits::example2(), circuits::gaas_datapath(),
                           circuits::appendix_fig1()}) {
    const DifferentialReport rep = check_circuit(c, 2);
    EXPECT_TRUE(rep.ok()) << c.name() << ":\n" << rep.to_string();
    EXPECT_TRUE(rep.feasible);
  }
}

TEST(Differential, PassesOnFuzzBattery) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const Circuit c = fuzz_circuit(seed);
    const DifferentialReport rep = check_circuit(c, seed * 31 + 7);
    EXPECT_TRUE(rep.ok()) << "fuzz seed " << seed << " (" << c.name() << "):\n"
                          << rep.to_string();
  }
}

TEST(Differential, InjectedSkewIsDetected) {
  DifferentialOptions opt;
  opt.inject_solver_skew = 0.5;  // half again on a ring path: Tc* must move
  const DifferentialReport rep = check_circuit(circuits::example1(80.0), 3, opt);
  EXPECT_TRUE(rep.has(CheckKind::kSolverAgreement)) << rep.to_string();
}

TEST(Differential, ConsistentInfeasibilityIsNotAFailure) {
  // A hold requirement no cycle time can buy (hold constraints are
  // Tc-independent on a same-phase pair): both engines must agree on
  // kInfeasible, which counts as agreement (feasible stays false).
  Circuit c("hold_infeasible", 1);
  c.add_latch("A", 1, 1.0, 2.0);
  Element b;
  b.name = "B";
  b.phase = 1;
  b.setup = 1.0;
  b.dq = 2.0;
  b.hold = 1e6;
  c.add_element(b);
  c.add_path("A", "B", 5.0);
  DifferentialOptions opt;
  opt.generator.hold_constraints = true;
  const DifferentialReport rep = check_circuit(c, 4, opt);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_FALSE(rep.feasible);
}

// Regression: fuzz seed 26 (pre-fix). The binary search lands within `tol`
// of a critical loop; sliding the departures down from the Bellman-Ford
// point then sheds only ~tol per sweep and tripped the sweep limit, so the
// graph solver errored with kNotConverged on circuits the simplex solved.
// Fixed by iterating the final fixpoint up from zero instead.
TEST(GraphSolverRegression, NearCriticalLoopFromFuzzSeed26) {
  constexpr const char* kRepro = R"(
circuit synthetic_k3_s4_l2
phases 3
latch S0L0 phase=1 setup=1.347558 dq=3.820373
latch S0L1 phase=1 setup=1.347558 dq=3.820373
latch S1L0 phase=2 setup=1.347558 dq=3.820373
latch S1L1 phase=2 setup=1.347558 dq=3.820373
latch S2L0 phase=3 setup=1.347558 dq=3.820373
latch S2L1 phase=3 setup=1.347558 dq=3.820373
latch S3L0 phase=1 setup=1.347558 dq=3.820373
path S0L0 S1L0 delay=20
path S0L1 S1L1 delay=20
path S1L0 S2L0 delay=16
path S1L1 S2L1 delay=20
path S2L0 S3L0 delay=19
path S3L0 S0L0 delay=22
)";
  const auto c = parser::parse_circuit(kRepro);
  ASSERT_TRUE(c) << c.error().to_string();
  const auto lp = opt::minimize_cycle_time(*c);
  const auto bf = opt::minimize_cycle_time_graph(*c);
  ASSERT_TRUE(lp) << lp.error().to_string();
  ASSERT_TRUE(bf) << bf.error().to_string();
  EXPECT_NEAR(bf->min_cycle, lp->min_cycle, 1e-4);
  const DifferentialReport rep = check_circuit(*c, 26);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
}

// The graph solver pinned to the simplex optimum across the whole named
// circuit collection plus a synthetic sweep (beyond graph_solver_test's
// spot checks, this covers the example1 delay family against the LP
// directly rather than the published closed form).
TEST(GraphSolverRegression, PinsToSimplexOnEveryCircuitFamily) {
  std::vector<Circuit> all;
  for (const double d41 : {0.0, 30.0, 60.0, 80.0, 100.0, 140.0, 160.0}) {
    all.push_back(circuits::example1(d41));
  }
  all.push_back(circuits::example2());
  all.push_back(circuits::gaas_datapath());
  all.push_back(circuits::appendix_fig1());
  circuits::SyntheticParams p;
  for (const int k : {1, 2, 3}) {
    p.num_phases = k;
    p.num_stages = 2 * k + 2;
    all.push_back(circuits::synthetic_circuit(p, 900u + static_cast<uint64_t>(k)));
  }
  for (const Circuit& c : all) {
    const auto lp = opt::minimize_cycle_time(c);
    const auto bf = opt::minimize_cycle_time_graph(c);
    ASSERT_TRUE(lp) << c.name();
    ASSERT_TRUE(bf) << c.name() << ": " << bf.error().to_string();
    EXPECT_NEAR(bf->min_cycle, lp->min_cycle, 1e-4) << c.name();
  }
}

// Incremental re-analysis equals a from-scratch solve in both directions,
// on a circuit drawn by the fuzzer (the named-circuit variants live in
// sta/incremental_test.cpp).
TEST(IncrementalEquivalence, BothDirectionsOnFuzzCircuit) {
  // Not every fuzz draw is feasible; take the first seed from 11 that is.
  Circuit c = fuzz_circuit(11);
  auto r = opt::minimize_cycle_time(c);
  for (uint64_t seed = 12; !r && seed < 24; ++seed) {
    c = fuzz_circuit(seed);
    r = opt::minimize_cycle_time(c);
  }
  ASSERT_TRUE(r) << "no feasible fuzz circuit in seed range";
  const ClockSchedule sch = r->schedule.scaled(1.3);
  const auto from_scratch = [&](const Circuit& cc) {
    return sta::compute_departures(
        cc, sch, std::vector<double>(static_cast<size_t>(cc.num_elements()), 0.0));
  };
  const sta::FixpointResult before = from_scratch(c);
  ASSERT_TRUE(before.converged);
  for (const double factor : {1.15, 0.6}) {  // increase, then decrease
    Circuit mutated = c;
    const int p = c.num_paths() / 2;
    const double old_delay = c.path(p).delay;
    mutated.set_path_delay(p, old_delay * factor);
    const sta::FixpointResult inc =
        sta::incremental_update(mutated, sch, before.departure, p, old_delay);
    const sta::FixpointResult full = from_scratch(mutated);
    ASSERT_TRUE(inc.converged) << factor;
    ASSERT_TRUE(full.converged) << factor;
    for (size_t i = 0; i < full.departure.size(); ++i) {
      EXPECT_NEAR(inc.departure[i], full.departure[i], 1e-9) << factor << " @" << i;
    }
  }
}

TEST(Shrink, ReducesToTheFailingCore) {
  // Chain of 6 latches with one heavy path; the "failure" is simply the
  // presence of a path with delay >= 50. Everything else must disappear.
  Circuit c("chain", 2);
  for (int i = 0; i < 6; ++i) {
    c.add_latch("L" + std::to_string(i), (i % 2) + 1, 1.0, 2.0);
  }
  for (int i = 0; i + 1 < 6; ++i) {
    c.add_path(i, i + 1, i == 2 ? 63.7 : 10.0, 0.0, "blk" + std::to_string(i));
  }
  const FailurePredicate heavy_path = [](const Circuit& cand) {
    for (const CombPath& p : cand.paths()) {
      if (p.delay >= 50.0) return true;
    }
    return false;
  };
  const ShrinkResult res = shrink_circuit(c, heavy_path);
  EXPECT_EQ(res.circuit.num_paths(), 1);
  EXPECT_EQ(res.circuit.num_elements(), 2);
  EXPECT_DOUBLE_EQ(res.circuit.path(0).delay, 64.0);  // rounded onto the grid
  EXPECT_TRUE(res.circuit.path(0).label.empty());     // labels cleared
  EXPECT_GT(res.attempts, res.accepted);
  // The minimal repro round-trips through the .lct format.
  const auto back = parser::parse_circuit(parser::write_circuit(res.circuit));
  ASSERT_TRUE(back) << back.error().to_string();
  EXPECT_TRUE(heavy_path(*back));
}

TEST(Shrink, RebuildHelpersRemapIndices) {
  Circuit c("helpers", 2);
  c.add_latch("A", 1, 1.0, 2.0);
  c.add_latch("B", 2, 1.0, 2.0);
  c.add_latch("C", 1, 1.0, 2.0);
  c.add_path("A", "B", 5.0);
  c.add_path("B", "C", 6.0);
  c.add_path("C", "A", 7.0);

  const Circuit no_mid_path = without_path(c, 1);
  EXPECT_EQ(no_mid_path.num_paths(), 2);
  EXPECT_EQ(no_mid_path.num_elements(), 3);
  EXPECT_DOUBLE_EQ(no_mid_path.path(1).delay, 7.0);

  const Circuit no_b = without_element(c, 1);
  EXPECT_EQ(no_b.num_elements(), 2);
  ASSERT_EQ(no_b.num_paths(), 1);  // only C->A survives
  EXPECT_DOUBLE_EQ(no_b.path(0).delay, 7.0);
  EXPECT_EQ(no_b.element(no_b.path(0).from).name, "C");
  EXPECT_EQ(no_b.element(no_b.path(0).to).name, "A");
}

// The skew leg is on by default (PassesOnEveryNamedCircuit and
// PassesOnFuzzBattery above already exercise it); these push the magnitude
// well past the default and sweep a fresh seed range.
TEST(Differential, SkewLegPassesWithAggressiveMagnitude) {
  DifferentialOptions opt;
  opt.skew_magnitude = 0.25;  // up to a quarter of Tc* per latch
  for (const Circuit& c : {circuits::example1(80.0), circuits::example2(),
                           circuits::gaas_datapath(), circuits::appendix_fig1()}) {
    const DifferentialReport rep = check_circuit(c, 7, opt);
    EXPECT_TRUE(rep.ok()) << c.name() << ":\n" << rep.to_string();
  }
}

TEST(Differential, SkewLegPassesOnFuzzBattery) {
  DifferentialOptions opt;
  opt.skew_magnitude = 0.10;
  for (uint64_t seed = 41; seed <= 100; ++seed) {
    const Circuit c = fuzz_circuit(seed);
    const DifferentialReport rep = check_circuit(c, seed * 131 + 3, opt);
    EXPECT_TRUE(rep.ok()) << "fuzz seed " << seed << " (" << c.name() << "):\n"
                          << rep.to_string();
  }
}

TEST(Differential, SkewLegIsDeterministicAndOptional) {
  const Circuit c = circuits::example2();
  DifferentialOptions on;
  const DifferentialReport a = check_circuit(c, 12, on);
  const DifferentialReport b = check_circuit(c, 12, on);
  EXPECT_EQ(a.failures.size(), b.failures.size());
  EXPECT_TRUE(a.ok()) << a.to_string();
  DifferentialOptions off;
  off.check_skew = false;
  const DifferentialReport rep = check_circuit(c, 12, off);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  EXPECT_FALSE(rep.has(CheckKind::kSkewAgreement));
}

TEST(Fuzzer, CircuitsAreDeterministicPerSeed) {
  for (const uint64_t seed : {1u, 9u, 23u}) {
    const Circuit a = fuzz_circuit(seed);
    const Circuit b = fuzz_circuit(seed);
    ASSERT_EQ(a.num_elements(), b.num_elements()) << seed;
    ASSERT_EQ(a.num_paths(), b.num_paths()) << seed;
    for (int p = 0; p < a.num_paths(); ++p) {
      EXPECT_DOUBLE_EQ(a.path(p).delay, b.path(p).delay) << seed;
    }
    EXPECT_TRUE(a.validate().empty()) << seed;
  }
}

TEST(Fuzzer, InjectedFaultIsCaughtShrunkAndWritten) {
  FuzzOptions options;
  options.num_seeds = 4;
  options.diff.inject_solver_skew = 0.10;
  options.repro_dir = testing::TempDir();
  const FuzzResult res = run_fuzz(options);
  ASSERT_FALSE(res.failures.empty());
  for (const FuzzFailure& f : res.failures) {
    EXPECT_EQ(f.failures.front().kind, CheckKind::kSolverAgreement);
    // Shrinking made real progress and the repro is a valid .lct that
    // still fails the same check.
    EXPECT_LT(f.shrunk_paths, f.original_paths);
    const auto back = parser::parse_circuit(f.repro_lct);
    ASSERT_TRUE(back) << back.error().to_string();
    EXPECT_TRUE(check_circuit(*back, f.seed * 0x9e3779b97f4a7c15ull + 1, options.diff)
                    .has(CheckKind::kSolverAgreement));
    ASSERT_FALSE(f.repro_path.empty());
    const auto loaded = parser::load_circuit(f.repro_path);
    EXPECT_TRUE(loaded.has_value());
  }
}

TEST(Fuzzer, CleanRunReportsStats) {
  FuzzOptions options;
  options.num_seeds = 30;
  const FuzzResult res = run_fuzz(options);
  EXPECT_TRUE(res.ok()) << res.failures.size() << " failures; first: "
                        << (res.failures.empty() ? "" : res.failures.front().repro_lct);
  EXPECT_EQ(res.circuits_checked, 30);
  EXPECT_GT(res.feasible, 0);
}

}  // namespace
}  // namespace mintc::check
