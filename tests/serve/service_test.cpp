// TimingService verb tests: the transport-free protocol core.
//
// Everything goes through handle()/handle_line() — the same entry points the
// socket server uses — so these tests cover request decoding, session-pool
// behavior, cache correctness and the error envelope in one place.
#include "serve/service.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "circuits/example1.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parser/lct.h"
#include "parser/lcs.h"
#include "sta/analysis.h"

namespace mintc::serve {
namespace {

Json req(std::initializer_list<std::pair<std::string, Json>> fields) {
  Json r = Json::object();
  for (const auto& [k, v] : fields) r.set(k, v);
  return r;
}

Json expect_ok(TimingService& service, const Json& request) {
  const Json response = service.handle(request);
  EXPECT_TRUE(response.get("ok").as_bool(false)) << response.dump();
  return response;
}

Json expect_error(TimingService& service, const Json& request, const std::string& kind) {
  const Json response = service.handle(request);
  EXPECT_FALSE(response.get("ok").as_bool(true)) << response.dump();
  EXPECT_EQ(response.get("error").get("kind").as_string(), kind) << response.dump();
  return response;
}

Json load_example1(TimingService& service, const std::string& key) {
  return expect_ok(service,
                   req({{"verb", Json("load")}, {"circuit", Json(key)},
                        {"builtin", Json("example1")}}));
}

TEST(ServeService, LoadBuiltinReportsShapeAndOptimum) {
  TimingService service;
  const Json r = load_example1(service, "e1").get("result");
  EXPECT_EQ(r.get("elements").as_long(0), 4);
  EXPECT_EQ(r.get("paths").as_long(0), 4);
  EXPECT_EQ(r.get("phases").as_long(0), 2);
  EXPECT_EQ(r.get("generation").as_long(-1), 0);
  EXPECT_EQ(r.get("fingerprint").as_string().size(), 16u);
  // PR 1 ground truth: example1's minimum cycle time is 110.
  EXPECT_DOUBLE_EQ(r.get("min_cycle").as_number(), 110.0);
  EXPECT_DOUBLE_EQ(r.get("schedule").get("cycle").as_number(), 110.0);
}

TEST(ServeService, AnalyzeIsBitIdenticalToDirectCheckSchedule) {
  TimingService service;
  const Json loaded = load_example1(service, "e1").get("result");
  const Json analyzed = expect_ok(service, req({{"verb", Json("analyze")},
                                                {"circuit", Json("e1")},
                                                {"detail", Json(true)}}))
                            .get("result");

  ClockSchedule schedule;
  schedule.cycle = loaded.get("schedule").num_or("cycle", 0.0);
  for (const Json& v : loaded.get("schedule").get("start").items()) {
    schedule.start.push_back(v.as_number());
  }
  for (const Json& v : loaded.get("schedule").get("width").items()) {
    schedule.width.push_back(v.as_number());
  }
  sta::AnalysisOptions options;
  options.check_hold = true;
  const sta::TimingReport direct =
      sta::check_schedule(circuits::example1(), schedule, options);

  EXPECT_EQ(analyzed.get("feasible").as_bool(!direct.feasible), direct.feasible);
  EXPECT_EQ(analyzed.num_or("worst_setup_slack", direct.worst_setup_slack + 1),
            direct.worst_setup_slack);
  const Json& elements = analyzed.get("elements");
  ASSERT_EQ(elements.size(), direct.elements.size());
  for (size_t i = 0; i < direct.elements.size(); ++i) {
    EXPECT_EQ(elements.at(i).num_or("departure", direct.elements[i].departure + 1),
              direct.elements[i].departure)
        << "element " << i;
  }
}

TEST(ServeService, SecondAnalyzeIsCachedAndIdentical) {
  TimingService service;
  load_example1(service, "e1");
  const Json request =
      req({{"verb", Json("analyze")}, {"circuit", Json("e1")}, {"detail", Json(true)}});
  const Json first = service.handle(request);
  const Json second = service.handle(request);
  EXPECT_FALSE(first.get("cached").as_bool(true));
  EXPECT_TRUE(second.get("cached").as_bool(false));
  EXPECT_EQ(first.get("result").dump(), second.get("result").dump());
  EXPECT_GE(service.cache().stats().hits, 1);
}

TEST(ServeService, EditInvalidatesCacheAndChangesFingerprint) {
  TimingService service;
  const std::string fp0 =
      load_example1(service, "e1").get("result").get("fingerprint").as_string();
  const Json analyze = req({{"verb", Json("analyze")}, {"circuit", Json("e1")}});
  service.handle(analyze);

  Json edit = req({{"op", Json("set_path_delay")}, {"path", Json(0L)}, {"delay", Json(55.0)}});
  Json edits = Json::array();
  edits.push(std::move(edit));
  const Json r = expect_ok(service, req({{"verb", Json("edit_batch")},
                                         {"circuit", Json("e1")},
                                         {"edits", std::move(edits)}}))
                     .get("result");
  EXPECT_EQ(r.get("applied").as_long(0), 1);
  EXPECT_EQ(r.get("generation").as_long(0), 1);
  EXPECT_NE(r.get("fingerprint").as_string(), fp0);

  // The re-analysis sees the new delay, not the cached pre-edit result.
  const Json after = service.handle(analyze);
  EXPECT_FALSE(after.get("cached").as_bool(true));
}

TEST(ServeService, EditBatchIsAtomicUnderRollback) {
  TimingService service;
  const std::string fp0 =
      load_example1(service, "e1").get("result").get("fingerprint").as_string();

  // First edit is valid, second references a path that does not exist: the
  // whole batch must roll back.
  Json edits = Json::array();
  edits.push(req({{"op", Json("set_path_delay")}, {"path", Json(0L)}, {"delay", Json(55.0)}}));
  edits.push(req({{"op", Json("set_path_delay")}, {"path", Json(99L)}, {"delay", Json(1.0)}}));
  const Json response = service.handle(req({{"verb", Json("edit_batch")},
                                            {"circuit", Json("e1")},
                                            {"edits", std::move(edits)}}));
  EXPECT_FALSE(response.get("ok").as_bool(true));
  EXPECT_NE(response.get("error").get("message").as_string().find("edit 1"),
            std::string::npos)
      << response.dump();

  // State (and therefore the fingerprint) is exactly the pre-batch one.
  Json probe = Json::array();
  probe.push(req({{"op", Json("set_path_label")}, {"path", Json(0L)}, {"label", Json("t")}}));
  const Json after = expect_ok(service, req({{"verb", Json("edit_batch")},
                                             {"circuit", Json("e1")},
                                             {"edits", std::move(probe)}}))
                         .get("result");
  const Json undone = expect_ok(service, req({{"verb", Json("undo")},
                                              {"circuit", Json("e1")},
                                              {"to", Json(after.get("mark"))}}))
                          .get("result");
  EXPECT_EQ(undone.get("fingerprint").as_string(), fp0);
}

TEST(ServeService, InvalidEditOpsAreRejectedWithoutAborting) {
  TimingService service;
  load_example1(service, "e1");
  const auto reject = [&](Json edit) {
    Json edits = Json::array();
    edits.push(std::move(edit));
    const Json response = service.handle(req({{"verb", Json("edit_batch")},
                                              {"circuit", Json("e1")},
                                              {"edits", std::move(edits)}}));
    EXPECT_FALSE(response.get("ok").as_bool(true)) << response.dump();
  };
  reject(req({{"op", Json("set_path_delay")}, {"path", Json(0L)}, {"delay", Json(-1.0)}}));
  reject(req({{"op", Json("set_element_dq")}, {"element", Json(-1L)}, {"value", Json(1.0)}}));
  reject(req({{"op", Json("set_schedule")}, {"schedule", Json("not an lcs file")}}));
  reject(req({{"op", Json("scale_schedule")}, {"factor", Json(0.0)}}));
  reject(req({{"op", Json("no_such_op")}}));
  reject(Json(7.0));  // not even an object
}

TEST(ServeService, UndoRewindsGenerationsAndContent) {
  TimingService service;
  const std::string fp0 =
      load_example1(service, "e1").get("result").get("fingerprint").as_string();
  for (int i = 0; i < 3; ++i) {
    Json edits = Json::array();
    edits.push(req({{"op", Json("set_path_delay")},
                    {"path", Json(0L)},
                    {"delay", Json(50.0 + i)}}));
    expect_ok(service, req({{"verb", Json("edit_batch")},
                            {"circuit", Json("e1")},
                            {"edits", std::move(edits)}}));
  }
  const Json r = expect_ok(service, req({{"verb", Json("undo")},
                                         {"circuit", Json("e1")},
                                         {"to", Json(0L)}}))
                     .get("result");
  EXPECT_EQ(r.get("fingerprint").as_string(), fp0);
  // Undo is itself a mutation: the generation moves FORWARD (monotone), so
  // stale cache entries can never be revived by generation collision.
  EXPECT_GT(r.get("generation").as_long(0), 3);
}

TEST(ServeService, SweepScalesFromBaseAndRestoresState) {
  TimingService service;
  const std::string fp0 =
      load_example1(service, "e1").get("result").get("fingerprint").as_string();
  Json factors = Json::array();
  factors.push(Json(1.0));
  factors.push(Json(1.2));
  factors.push(Json(0.9));
  const Json r = expect_ok(service, req({{"verb", Json("sweep")},
                                         {"circuit", Json("e1")},
                                         {"factors", std::move(factors)}}))
                     .get("result");
  const Json& results = r.get("results");
  ASSERT_EQ(results.size(), 3u);
  EXPECT_DOUBLE_EQ(r.get("base_cycle").as_number(), 110.0);
  // Factors scale the ORIGINAL schedule, not the previous step's.
  EXPECT_DOUBLE_EQ(results.at(0).get("cycle").as_number(), 110.0);
  EXPECT_DOUBLE_EQ(results.at(1).get("cycle").as_number(), 110.0 * 1.2);
  EXPECT_DOUBLE_EQ(results.at(2).get("cycle").as_number(), 110.0 * 0.9);
  EXPECT_TRUE(results.at(1).get("feasible").as_bool(false));   // slack grows
  EXPECT_FALSE(results.at(2).get("feasible").as_bool(true));   // below optimum

  // The sweep left no trace: same content, and a plain analyze still matches.
  const Json stats = expect_ok(service, req({{"verb", Json("stats")}})).get("result");
  (void)stats;
  const Json analyzed = expect_ok(service, req({{"verb", Json("analyze")},
                                                {"circuit", Json("e1")}}))
                            .get("result");
  EXPECT_EQ(analyzed.get("fingerprint").as_string(), fp0);
  EXPECT_TRUE(analyzed.get("feasible").as_bool(false));
}

TEST(ServeService, SkewEditInvalidatesCacheAndChangesFingerprint) {
  TimingService service;
  const std::string fp0 =
      load_example1(service, "e1").get("result").get("fingerprint").as_string();
  const Json analyze = req({{"verb", Json("analyze")}, {"circuit", Json("e1")}});
  const Json before = service.handle(analyze);
  EXPECT_TRUE(service.handle(analyze).get("cached").as_bool(false));

  Json edits = Json::array();
  edits.push(req({{"op", Json("set_element_skew")},
                  {"element", Json(0L)},
                  {"value", Json(5.0)}}));
  const Json r = expect_ok(service, req({{"verb", Json("edit_batch")},
                                         {"circuit", Json("e1")},
                                         {"edits", std::move(edits)}}))
                     .get("result");
  EXPECT_NE(r.get("fingerprint").as_string(), fp0);

  // The skew edit must reach a fresh analysis, never the pre-edit cache
  // entry: at the exact optimum, 5 ns of capture skew eats the slack.
  const Json after = service.handle(analyze);
  EXPECT_FALSE(after.get("cached").as_bool(true));
  EXPECT_LT(after.get("result").get("worst_setup_slack").as_number(),
            before.get("result").get("worst_setup_slack").as_number() - 4.9);

  // Negative and non-finite skews are rejected at the protocol boundary.
  Json bad = Json::array();
  bad.push(req({{"op", Json("set_element_skew")},
                {"element", Json(0L)},
                {"value", Json(-1.0)}}));
  expect_error(service, req({{"verb", Json("edit_batch")},
                             {"circuit", Json("e1")},
                             {"edits", std::move(bad)}}),
               "invalid_argument");
}

TEST(ServeService, SkewSweepProducesToleranceCurveAndRestoresState) {
  TimingService service;
  const std::string fp0 =
      load_example1(service, "e1").get("result").get("fingerprint").as_string();
  const Json base = service.handle(req({{"verb", Json("analyze")},
                                        {"circuit", Json("e1")}}))
                        .get("result");
  // The last point deliberately exceeds the base slack so the design tips
  // over: a uniform skew sigma costs every setup check exactly sigma.
  const double s0 = base.get("worst_setup_slack").as_number();
  const double sigma_kill = s0 + 1.0;
  Json skews = Json::array();
  skews.push(Json(0.0));  // zero skew is a legal sweep point
  skews.push(Json(2.0));
  skews.push(Json(sigma_kill));
  const Json r = expect_ok(service, req({{"verb", Json("sweep")},
                                         {"circuit", Json("e1")},
                                         {"param", Json("clock_skew")},
                                         {"factors", Json(skews)}}))
                     .get("result");
  EXPECT_EQ(r.get("param").as_string(), "clock_skew");
  const Json& rows = r.get("results");
  ASSERT_EQ(rows.size(), 3u);
  // Rows are keyed by "skew"; the schedule itself never moves.
  EXPECT_DOUBLE_EQ(rows.at(1).get("skew").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(rows.at(1).get("cycle").as_number(), 110.0);
  // The curve is the base slack shifted down point by point.
  EXPECT_DOUBLE_EQ(rows.at(0).get("worst_setup_slack").as_number(), s0);
  EXPECT_NEAR(rows.at(1).get("worst_setup_slack").as_number(), s0 - 2.0, 1e-9);
  EXPECT_NEAR(rows.at(2).get("worst_setup_slack").as_number(), s0 - sigma_kill, 1e-9);
  EXPECT_TRUE(rows.at(0).get("feasible").as_bool(false));
  EXPECT_FALSE(rows.at(2).get("feasible").as_bool(true));

  // The sweep restored the pre-sweep content exactly.
  EXPECT_EQ(r.get("fingerprint").as_string(), fp0);
  const Json again = expect_ok(service, req({{"verb", Json("analyze")},
                                             {"circuit", Json("e1")}}))
                         .get("result");
  EXPECT_EQ(again.get("fingerprint").as_string(), fp0);

  // Repeat is a cache hit; the same values under param=scale are NOT (the
  // parameter is part of the cache identity) — and a scale of 0 is invalid
  // while a skew of 0 was accepted above.
  const Json repeat = service.handle(req({{"verb", Json("sweep")},
                                          {"circuit", Json("e1")},
                                          {"param", Json("clock_skew")},
                                          {"factors", Json(skews)}}));
  EXPECT_TRUE(repeat.get("cached").as_bool(false)) << repeat.dump();
  expect_error(service, req({{"verb", Json("sweep")},
                             {"circuit", Json("e1")},
                             {"param", Json("scale")},
                             {"factors", Json(skews)}}),
               "invalid_argument");
  Json neg = Json::array();
  neg.push(Json(-0.5));
  expect_error(service, req({{"verb", Json("sweep")},
                             {"circuit", Json("e1")},
                             {"param", Json("clock_skew")},
                             {"factors", std::move(neg)}}),
               "invalid_argument");
  expect_error(service, req({{"verb", Json("sweep")},
                             {"circuit", Json("e1")},
                             {"param", Json("voltage")}}),
               "invalid_argument");
}

TEST(ServeService, MinVerbMatchesLoadOptimum) {
  TimingService service;
  load_example1(service, "e1");
  const Json r = expect_ok(service, req({{"verb", Json("min")}, {"circuit", Json("e1")}}))
                     .get("result");
  EXPECT_DOUBLE_EQ(r.get("min_cycle").as_number(), 110.0);
  // The rendered .lcs parses back to the reported schedule.
  const Expected<ClockSchedule> parsed = parser::parse_schedule(r.get("lcs").as_string());
  ASSERT_TRUE(parsed);
  EXPECT_DOUBLE_EQ(parsed->cycle, 110.0);
}

TEST(ServeService, ReportVerbRendersInMemory) {
  TimingService service;
  load_example1(service, "e1");
  const Json table = expect_ok(service, req({{"verb", Json("report")},
                                             {"circuit", Json("e1")},
                                             {"format", Json("table")}}))
                         .get("result");
  EXPECT_NE(table.get("content").as_string().find("e1"), std::string::npos);
  const Json json = expect_ok(service, req({{"verb", Json("report")},
                                            {"circuit", Json("e1")},
                                            {"format", Json("json")},
                                            {"signoff", Json(true)}}))
                        .get("result");
  EXPECT_TRUE(parse_json(json.get("content").as_string()))
      << "report json must itself be valid JSON";
  expect_error(service, req({{"verb", Json("report")},
                             {"circuit", Json("e1")},
                             {"format", Json("pdf")}}),
               "invalid_argument");
}

TEST(ServeService, DeratedCornerGetsItsOwnContentIdentity) {
  // The corner is part of the cache identity (RunMetadata contract): the
  // same circuit derated differently must produce different fingerprints
  // and must never be served from the nominal corner's cache entries.
  TimingService service;
  load_example1(service, "nom");
  load_example1(service, "slow");
  const Json analyze_nom = req({{"verb", Json("analyze")}, {"circuit", Json("nom")}});
  const Json nominal = service.handle(analyze_nom).get("result");

  Json edits = Json::array();
  edits.push(req({{"op", Json("derate")},
                  {"delay_scale", Json(1.1)},
                  {"min_scale", Json(0.9)}}));
  const Json derated_state = expect_ok(service, req({{"verb", Json("edit_batch")},
                                                     {"circuit", Json("slow")},
                                                     {"edits", std::move(edits)}}))
                                 .get("result");
  EXPECT_NE(derated_state.get("fingerprint").as_string(),
            nominal.get("fingerprint").as_string());

  const Json derated = service.handle(req({{"verb", Json("analyze")},
                                           {"circuit", Json("slow")}}));
  EXPECT_FALSE(derated.get("cached").as_bool(true));
  EXPECT_NE(derated.get("result").get("worst_setup_slack").as_number(),
            nominal.get("worst_setup_slack").as_number());
}

TEST(ServeService, SessionPoolEvictsLruUnderByteBudget) {
  ServiceConfig config;
  config.session_bytes = 1;  // every load evicts all idle predecessors
  TimingService service(config);
  load_example1(service, "a");
  load_example1(service, "b");
  EXPECT_GE(service.pool_stats().evictions, 1L);
  EXPECT_EQ(service.pool_stats().sessions, 1u);
  expect_error(service, req({{"verb", Json("analyze")}, {"circuit", Json("a")}}),
               "not_loaded");
  expect_ok(service, req({{"verb", Json("analyze")}, {"circuit", Json("b")}}));
}

TEST(ServeService, StatsReportsSessionsCacheAndMetrics) {
  TimingService service;
  load_example1(service, "e1");
  service.handle(req({{"verb", Json("analyze")}, {"circuit", Json("e1")}}));
  const Json r = expect_ok(service, req({{"verb", Json("stats")}})).get("result");
  EXPECT_EQ(r.get("sessions").get("count").as_long(0), 1);
  EXPECT_GT(r.get("sessions").get("bytes").as_long(0), 0);
  EXPECT_EQ(r.get("sessions").get("keys").at(0).get("circuit").as_string(), "e1");
  EXPECT_GE(r.get("cache").get("entries").as_long(-1), 1);
  // The registered gauges/counters show up in the metrics array by name.
  bool saw_evictions = false, saw_cache_bytes = false;
  for (const Json& m : r.get("metrics").items()) {
    const std::string& name = m.get("name").as_string();
    if (name == "session.evictions") saw_evictions = true;
    if (name == "cache.bytes") saw_cache_bytes = true;
  }
  EXPECT_TRUE(saw_evictions);
  EXPECT_TRUE(saw_cache_bytes);
}

TEST(ServeService, ErrorEnvelopes) {
  TimingService service;
  expect_error(service, req({{"verb", Json("analyze")}, {"circuit", Json("ghost")}}),
               "not_loaded");
  expect_error(service, req({{"verb", Json("frobnicate")}}), "unknown_verb");
  expect_error(service, req({{"verb", Json("load")}, {"circuit", Json("x")},
                             {"builtin", Json("no_such_builtin")}}),
               "invalid_argument");
  expect_error(service, req({{"verb", Json("load")}, {"circuit", Json("x")},
                             {"text", Json("not an lct file")}}),
               "invalid_argument");
}

TEST(ServeService, HandleLineRoundTripsFramesAndSurvivesGarbage) {
  TimingService service;
  const std::string frame =
      service.handle_line(R"({"id": 3, "verb": "load", "circuit": "e1", )"
                          R"("builtin": "example1"})");
  ASSERT_EQ(frame.back(), '\n');
  const Expected<Json> response = parse_json(std::string_view(frame).substr(0, frame.size() - 1));
  ASSERT_TRUE(response);
  EXPECT_EQ(response->get("id").as_long(0), 3);
  EXPECT_TRUE(response->get("ok").as_bool(false));

  for (const char* bad : {"", "]", "{\"no\": \"verb\"}", "\x01\x02", "{\"verb\":7}"}) {
    const std::string err_frame = service.handle_line(bad);
    const Expected<Json> err = parse_json(std::string_view(err_frame).substr(0, err_frame.size() - 1));
    ASSERT_TRUE(err) << "error frame must still be valid JSON for: " << bad;
    EXPECT_FALSE(err->get("ok").as_bool(true));
  }
}

TEST(ServeService, HandleLineEnforcesFrameCap) {
  ServiceConfig config;
  config.max_frame_bytes = 128;
  TimingService service(config);
  std::string big = R"({"verb": "load", "circuit": "x", "text": ")";
  big.append(256, 'a');
  big += "\"}";
  const std::string frame = service.handle_line(big);
  const Expected<Json> response = parse_json(std::string_view(frame).substr(0, frame.size() - 1));
  ASSERT_TRUE(response);
  EXPECT_FALSE(response->get("ok").as_bool(true));
}

TEST(ServeService, ResetDropsEverything) {
  TimingService service;
  load_example1(service, "e1");
  service.handle(req({{"verb", Json("analyze")}, {"circuit", Json("e1")}}));
  service.reset();
  EXPECT_EQ(service.pool_stats().sessions, 0u);
  EXPECT_EQ(service.cache().stats().entries, 0u);
  expect_error(service, req({{"verb", Json("analyze")}, {"circuit", Json("e1")}}),
               "not_loaded");
}

TEST(ServeService, MetricsVerbEmitsPrometheusText) {
  TimingService service;
  load_example1(service, "e1");
  service.handle(req({{"verb", Json("analyze")}, {"circuit", Json("e1")}}));
  const Json r = expect_ok(service, req({{"verb", Json("metrics")}})).get("result");
  EXPECT_EQ(r.get("format").as_string(), "prometheus");
  const std::string& text = r.get("content").as_string();
  EXPECT_NE(text.find("# TYPE mintc_serve_requests_total counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("mintc_serve_requests_total "), std::string::npos);
  EXPECT_NE(text.find("# TYPE mintc_serve_latency_us histogram"), std::string::npos);
  EXPECT_NE(text.find("mintc_serve_latency_us_bucket{le=\"+Inf\"}"), std::string::npos);
  // The verb refreshes runtime gauges before rendering.
  EXPECT_NE(text.find("mintc_cache_bytes"), std::string::npos);
  EXPECT_NE(text.find("mintc_session_count 1"), std::string::npos) << text;
  EXPECT_NE(text.find("mintc_serve_inflight 1"), std::string::npos)
      << "the metrics request itself is in flight\n" << text;
}

// The tentpole contract: one sampled request produces one coherent span
// tree, sliced out of the shared ring by trace id via the `trace` verb.
TEST(ServeService, TraceVerbReturnsTheSampledRequestTree) {
  obs::Tracer::instance().clear();
  TimingService service;  // analyze_threads=0: whole solve on this thread
  load_example1(service, "e1");

  const Json response = service.handle(req({{"verb", Json("analyze")},
                                            {"circuit", Json("e1")},
                                            {"trace", Json("deadbeef01")}}));
  EXPECT_TRUE(response.get("ok").as_bool(false)) << response.dump();
  EXPECT_EQ(response.get("trace").as_string(), "000000deadbeef01");

  const Json r =
      expect_ok(service, req({{"verb", Json("trace")}})).get("result");
  EXPECT_EQ(r.get("format").as_string(), "chrome_trace");
  EXPECT_GT(r.get("events").as_long(0), 0);
  EXPECT_EQ(r.get("dropped").as_long(-1), 0);

  const Expected<Json> parsed = parse_json(r.get("content").as_string());
  ASSERT_TRUE(parsed) << "trace content must be valid Chrome trace JSON";
  std::vector<std::pair<std::string, std::string>> ours;  // (ph, name)
  for (const Json& e : parsed->get("traceEvents").items()) {
    if (e.get("args").get("trace").as_string() == "000000deadbeef01") {
      ours.emplace_back(e.get("ph").as_string(), e.get("name").as_string());
    }
  }
  ASSERT_GE(ours.size(), 4u);
  // Golden shape: the request span opens the tree and closes it last, with
  // the session solve (and its fixpoint) strictly inside.
  EXPECT_EQ(ours.front(), (std::pair<std::string, std::string>("B", "serve.request")));
  EXPECT_EQ(ours.back(), (std::pair<std::string, std::string>("E", "serve.request")));
  const auto index_of = [&](const char* ph, const char* name) {
    for (size_t i = 0; i < ours.size(); ++i) {
      if (ours[i].first == ph && ours[i].second == name) return static_cast<long>(i);
    }
    return -1L;
  };
  const long analyze_b = index_of("B", "session.analyze");
  const long analyze_e = index_of("E", "session.analyze");
  const long fix_b = index_of("B", "fixpoint.solve");
  const long fix_e = index_of("E", "fixpoint.solve");
  ASSERT_GE(analyze_b, 0);
  ASSERT_GE(fix_b, 0);
  EXPECT_LT(analyze_b, fix_b);   // fixpoint nests inside the session solve
  EXPECT_LT(fix_e, analyze_e);
  EXPECT_LT(analyze_e, static_cast<long>(ours.size()) - 1);

  // The default drains the ring: a second drain starts empty.
  const Json drained =
      expect_ok(service, req({{"verb", Json("trace")}})).get("result");
  EXPECT_EQ(drained.get("events").as_long(-1), 0);
}

TEST(ServeService, TraceVerbClearFalseKeepsTheBuffer) {
  obs::Tracer::instance().clear();
  TimingService service;
  load_example1(service, "e1");
  service.handle(req({{"verb", Json("analyze")},
                      {"circuit", Json("e1")},
                      {"trace", Json("abc123")}}));
  const Json keep = expect_ok(service, req({{"verb", Json("trace")},
                                            {"clear", Json(false)}}))
                        .get("result");
  const Json again = expect_ok(service, req({{"verb", Json("trace")}})).get("result");
  EXPECT_EQ(again.get("events").as_long(-1), keep.get("events").as_long(-2));
  obs::Tracer::instance().clear();
}

TEST(ServeService, UntracedRequestsRecordNoSpansAndEchoNothing) {
  obs::Tracer::instance().clear();
  TimingService service;
  load_example1(service, "e1");
  const Json response =
      service.handle(req({{"verb", Json("analyze")}, {"circuit", Json("e1")}}));
  EXPECT_TRUE(response.get("ok").as_bool(false));
  EXPECT_TRUE(response.get("trace").is_null());
  EXPECT_EQ(obs::Tracer::instance().num_events(), 0u);
}

TEST(ServeService, MalformedTraceFieldRejectsTheRequest) {
  TimingService service;
  load_example1(service, "e1");
  const Json response = expect_error(service,
                                     req({{"verb", Json("analyze")},
                                          {"circuit", Json("e1")},
                                          {"trace", Json("xyz")}}),
                                     "invalid_argument");
  EXPECT_NE(response.get("error").get("message").as_string().find("hex"),
            std::string::npos)
      << response.dump();
}

TEST(ServeService, SlowRequestThresholdCountsRequests) {
  const long before =
      obs::MetricsRegistry::instance().counter("serve.slow_requests").value();
  ServiceConfig config;
  config.slow_request_us = 1;  // every real request is slower than 1us
  TimingService service(config);
  load_example1(service, "e1");
  service.handle(req({{"verb", Json("analyze")}, {"circuit", Json("e1")}}));
  EXPECT_GE(obs::MetricsRegistry::instance().counter("serve.slow_requests").value(),
            before + 2);
}

TEST(ServeService, TelemetryOffServesIdenticallyWithoutRecording) {
  obs::Tracer::instance().clear();
  ServiceConfig config;
  config.telemetry = false;
  TimingService service(config);
  load_example1(service, "e1");

  // A sampled trace field is still validated and echoed (protocol), but no
  // spans are recorded and no context is installed (telemetry).
  const Json response = service.handle(req({{"verb", Json("analyze")},
                                            {"circuit", Json("e1")},
                                            {"trace", Json("beef")}}));
  EXPECT_TRUE(response.get("ok").as_bool(false)) << response.dump();
  EXPECT_EQ(response.get("trace").as_string(), "000000000000beef");
  EXPECT_EQ(obs::Tracer::instance().num_events(), 0u);
  expect_error(service, req({{"verb", Json("analyze")},
                             {"circuit", Json("e1")},
                             {"trace", Json("not-hex")}}),
               "invalid_argument");
}

}  // namespace
}  // namespace mintc::serve
