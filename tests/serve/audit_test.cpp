// AuditLog: JSONL rendering, append/flush accounting, size rotation to
// "<path>.1", and the service integration (every handled request becomes
// exactly one line).
#include "serve/audit.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "serve/json.h"
#include "serve/service.h"

namespace mintc::serve {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  return path;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool file_exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

TEST(ServeAudit, JsonLineGolden) {
  AuditRecord r;
  r.t_seconds = 1.5;
  r.trace = "00000000deadbeef";
  r.verb = "analyze";
  r.circuit = "e1";
  r.ok = true;
  r.cached = false;
  r.wall_us = 321.2;
  r.cpu_us = 300;
  r.relaxations = 4096;
  r.sweeps = 12;
  r.solves = 2;
  EXPECT_EQ(audit_json_line(r),
            "{\"t\": 1.500, \"trace\": \"00000000deadbeef\", \"verb\": \"analyze\", "
            "\"circuit\": \"e1\", \"ok\": true, \"cached\": false, \"us\": 321.2, "
            "\"cpu_us\": 300, \"relaxations\": 4096, \"sweeps\": 12, \"solves\": 2}");
}

TEST(ServeAudit, LinesParseAsJsonAndEscapeContent) {
  AuditRecord r;
  r.verb = "load";
  r.circuit = "we\"ird\\key";
  const std::string line = audit_json_line(r);
  const Expected<Json> parsed = parse_json(line);
  ASSERT_TRUE(parsed) << line;
  EXPECT_EQ(parsed->get("circuit").as_string(), "we\"ird\\key");
  EXPECT_FALSE(parsed->get("ok").as_bool(true));
  EXPECT_EQ(parsed->get("relaxations").as_long(-1), 0);
}

TEST(ServeAudit, AppendWritesOneFlushedLinePerRecord) {
  const std::string path = temp_path("audit_append.jsonl");
  AuditLog log(path, 1u << 20);
  AuditRecord r;
  r.verb = "analyze";
  for (int i = 0; i < 5; ++i) {
    r.t_seconds = i;
    log.append(r);  // flushed per record: readable without closing the log
  }
  EXPECT_EQ(log.written(), 5);
  EXPECT_EQ(log.rotations(), 0);
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 5u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(parse_json(line)) << line;
  }
}

TEST(ServeAudit, RotatesAtTheSizeCapKeepingOnePredecessor) {
  const std::string path = temp_path("audit_rotate.jsonl");
  // 4096 is the clamp floor; each record is ~150 bytes, so ~100 records
  // force several rotations.
  AuditLog log(path, 1);  // clamped up to 4096
  AuditRecord r;
  r.verb = "analyze";
  r.circuit = "rotating";
  for (int i = 0; i < 100; ++i) {
    r.t_seconds = i;
    log.append(r);
  }
  EXPECT_EQ(log.written(), 100);
  EXPECT_GE(log.rotations(), 1);
  EXPECT_TRUE(file_exists(path));
  EXPECT_TRUE(file_exists(path + ".1"));
  // Bounded disk: active + one predecessor, both under ~1x the cap plus one
  // record of slack.
  for (const std::string& p : {path, path + ".1"}) {
    std::ifstream in(p, std::ios::ate | std::ios::binary);
    EXPECT_LE(in.tellg(), static_cast<std::streamoff>(4096 + 256)) << p;
  }
  // Every surviving line is intact JSON — rotation never tears a record.
  for (const std::string& line : read_lines(path)) {
    EXPECT_TRUE(parse_json(line)) << line;
  }
}

TEST(ServeAudit, ResumesSizeAccountingAcrossReopen) {
  const std::string path = temp_path("audit_resume.jsonl");
  AuditRecord r;
  r.verb = "analyze";
  {
    AuditLog log(path, 4096);
    for (int i = 0; i < 10; ++i) log.append(r);
  }
  const size_t before = read_lines(path).size();
  AuditLog log(path, 4096);  // same file: appends, does not truncate
  log.append(r);
  EXPECT_EQ(read_lines(path).size(), before + 1);
}

TEST(ServeAudit, ServiceWritesOneRecordPerHandledRequest) {
  const std::string path = temp_path("audit_service.jsonl");
  ServiceConfig config;
  config.audit_path = path;
  TimingService service(config);
  ASSERT_NE(service.audit(), nullptr);

  Json load = Json::object();
  load.set("verb", Json("load"));
  load.set("circuit", Json("e1"));
  load.set("builtin", Json("example1"));
  Json analyze = Json::object();
  analyze.set("verb", Json("analyze"));
  analyze.set("circuit", Json("e1"));
  Json bad = Json::object();
  bad.set("verb", Json("nope"));

  service.handle(load);
  service.handle(analyze);
  service.handle(analyze);  // cached
  service.handle(bad);      // errors are audited too
  EXPECT_EQ(service.audit()->written(), 4);

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 4u);
  const Expected<Json> first_analyze = parse_json(lines[1]);
  ASSERT_TRUE(first_analyze);
  EXPECT_EQ(first_analyze->get("verb").as_string(), "analyze");
  EXPECT_TRUE(first_analyze->get("ok").as_bool(false));
  EXPECT_FALSE(first_analyze->get("cached").as_bool(true));
  EXPECT_GT(first_analyze->get("relaxations").as_long(0), 0);
  const Expected<Json> hit = parse_json(lines[2]);
  ASSERT_TRUE(hit);
  EXPECT_TRUE(hit->get("cached").as_bool(false));
  EXPECT_EQ(hit->get("relaxations").as_long(-1), 0);
  const Expected<Json> err = parse_json(lines[3]);
  ASSERT_TRUE(err);
  EXPECT_FALSE(err->get("ok").as_bool(true));
}

}  // namespace
}  // namespace mintc::serve
