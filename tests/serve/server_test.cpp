// Socket-level tests: SocketServer + Client over real TCP and Unix-domain
// sockets, including the robustness cases (malformed frames, oversized
// frames, mid-request disconnects, concurrent same-key edits).
#include "serve/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/service.h"

namespace mintc::serve {
namespace {

Json req(std::initializer_list<std::pair<std::string, Json>> fields) {
  Json r = Json::object();
  for (const auto& [k, v] : fields) r.set(k, v);
  return r;
}

struct TcpServerFixture {
  TimingService service;
  SocketServer server;

  explicit TcpServerFixture(ServerConfig config = make_config(),
                            ServiceConfig service_config = {})
      : service(service_config), server(service, std::move(config)) {
    const Expected<bool> started = server.start();
    EXPECT_TRUE(started) << (started ? "" : started.error().to_string());
  }
  ~TcpServerFixture() { server.stop(); }

  static ServerConfig make_config() {
    ServerConfig config;
    config.tcp_port = 0;  // ephemeral
    config.num_threads = 4;
    return config;
  }

  std::string address() const {
    return "127.0.0.1:" + std::to_string(server.tcp_port());
  }
};

TEST(ServeServer, TcpRoundTrip) {
  TcpServerFixture fx;
  Client client;
  ASSERT_TRUE(client.connect(fx.address()));
  const Expected<Json> loaded = client.call(req(
      {{"verb", Json("load")}, {"circuit", Json("e1")}, {"builtin", Json("example1")}}));
  ASSERT_TRUE(loaded) << (loaded ? "" : loaded.error().to_string());
  EXPECT_TRUE(loaded->get("ok").as_bool(false)) << loaded->dump();
  const Expected<Json> stats = client.call(req({{"verb", Json("stats")}}));
  ASSERT_TRUE(stats);
  EXPECT_EQ(stats->get("result").get("sessions").get("count").as_long(0), 1);
}

TEST(ServeServer, UnixSocketRoundTrip) {
  const std::string path = testing::TempDir() + "serve_unix_test.sock";
  std::remove(path.c_str());
  ServerConfig config;
  config.unix_path = path;
  TcpServerFixture fx(config);
  Client client;
  ASSERT_TRUE(client.connect("unix:" + path));
  const Expected<Json> r = client.call(req({{"verb", Json("stats")}}));
  ASSERT_TRUE(r) << (r ? "" : r.error().to_string());
  EXPECT_TRUE(r->get("ok").as_bool(false));
  fx.server.stop();
  // stop() unlinks the socket path.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST(ServeServer, PipelinedResponsesMatchById) {
  TcpServerFixture fx;
  Client client;
  ASSERT_TRUE(client.connect(fx.address()));
  ASSERT_TRUE(client.call(req({{"verb", Json("load")}, {"circuit", Json("e1")},
                               {"builtin", Json("example1")}})));
  std::vector<long> ids;
  for (int i = 0; i < 8; ++i) {
    const Expected<long> id = client.send(
        req({{"verb", Json("analyze")}, {"circuit", Json("e1")}, {"detail", Json(i % 2 == 0)}}));
    ASSERT_TRUE(id);
    ids.push_back(*id);
  }
  // Collect in reverse submission order: the stash must pair every response
  // with its id no matter how the server interleaved them.
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    const Expected<Json> r = client.recv(*it);
    ASSERT_TRUE(r) << (r ? "" : r.error().to_string());
    EXPECT_EQ(r->get("id").as_long(-1), *it);
    EXPECT_TRUE(r->get("ok").as_bool(false));
  }
}

TEST(ServeServer, BadVerbGetsErrorButKeepsConnection) {
  TcpServerFixture fx;
  Client client;
  ASSERT_TRUE(client.connect(fx.address()));
  const Expected<Json> bad = client.call(req({{"verb", Json("nope")}}));
  ASSERT_TRUE(bad);
  EXPECT_FALSE(bad->get("ok").as_bool(true));
  const Expected<Json> good = client.call(req({{"verb", Json("stats")}}));
  ASSERT_TRUE(good);
  EXPECT_TRUE(good->get("ok").as_bool(false));
}

// Raw-socket helper: connect to 127.0.0.1:port without the Client framing.
int raw_connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(ServeServer, RawMalformedJsonLineGetsErrorFrame) {
  TcpServerFixture fx;
  const int fd = raw_connect(fx.server.tcp_port());
  ASSERT_GE(fd, 0);
  const char wire[] = "this is not json\n";
  ASSERT_EQ(::send(fd, wire, sizeof wire - 1, 0),
            static_cast<ssize_t>(sizeof wire - 1));
  char buf[512];
  const ssize_t n = ::recv(fd, buf, sizeof buf - 1, 0);
  ASSERT_GT(n, 0);
  buf[n] = '\0';
  EXPECT_NE(std::strstr(buf, "\"ok\":false"), nullptr) << buf;
  ::close(fd);
}

TEST(ServeServer, OversizedFrameGetsFinalErrorAndClose) {
  ServerConfig config = TcpServerFixture::make_config();
  config.max_frame_bytes = 256;
  TcpServerFixture fx(config);
  const int fd = raw_connect(fx.server.tcp_port());
  ASSERT_GE(fd, 0);
  const std::string flood(1024, 'x');  // no newline, over the 256-byte cap
  ASSERT_GT(::send(fd, flood.data(), flood.size(), MSG_NOSIGNAL), 0);
  std::string got;
  char buf[512];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;  // server closed after the error frame
    got.append(buf, static_cast<size_t>(n));
  }
  EXPECT_NE(got.find("frame_too_large"), std::string::npos) << got;
  ::close(fd);
}

TEST(ServeServer, MidRequestDisconnectLeavesServerServing) {
  TcpServerFixture fx;
  // Half a request, then a hard close.
  const int fd = raw_connect(fx.server.tcp_port());
  ASSERT_GE(fd, 0);
  const char partial[] = "{\"verb\": \"load\", \"circ";
  ASSERT_GT(::send(fd, partial, sizeof partial - 1, 0), 0);
  ::close(fd);

  // A complete request followed by an immediate close (response racing the
  // disconnect) must not take the server down either.
  const int fd2 = raw_connect(fx.server.tcp_port());
  ASSERT_GE(fd2, 0);
  const char whole[] = "{\"verb\": \"stats\"}\n";
  ASSERT_GT(::send(fd2, whole, sizeof whole - 1, 0), 0);
  ::close(fd2);

  Client client;
  ASSERT_TRUE(client.connect(fx.address()));
  const Expected<Json> r = client.call(req({{"verb", Json("stats")}}));
  ASSERT_TRUE(r) << (r ? "" : r.error().to_string());
  EXPECT_TRUE(r->get("ok").as_bool(false));
}

TEST(ServeServer, ConcurrentSameKeyEditsSerializeWithoutTearing) {
  TcpServerFixture fx;
  {
    Client setup;
    ASSERT_TRUE(setup.connect(fx.address()));
    ASSERT_TRUE(setup.call(req({{"verb", Json("load")}, {"circuit", Json("e1")},
                                {"builtin", Json("example1")}})));
  }

  // Writers: each batch sets path 0 and path 1 to the SAME value; a torn
  // batch would leave them different. Readers: analyze(detail) concurrently
  // and check the invariant via the reported per-element data being
  // internally consistent (ok responses only — the strong check is on final
  // state below).
  constexpr int kWriters = 4;
  constexpr int kBatches = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Client client;
      if (!client.connect(fx.address())) {
        failures.fetch_add(1);
        return;
      }
      for (int b = 0; b < kBatches; ++b) {
        const double value = 40.0 + w * kBatches + b;
        Json edits = Json::array();
        edits.push(req({{"op", Json("set_path_delay")}, {"path", Json(0L)},
                        {"delay", Json(value)}}));
        edits.push(req({{"op", Json("set_path_delay")}, {"path", Json(1L)},
                        {"delay", Json(value)}}));
        const Expected<Json> r = client.call(req({{"verb", Json("edit_batch")},
                                                  {"circuit", Json("e1")},
                                                  {"edits", std::move(edits)}}));
        if (!r || !r->get("ok").as_bool(false)) failures.fetch_add(1);
      }
    });
  }
  std::atomic<bool> stop_readers{false};
  std::thread reader([&] {
    Client client;
    if (!client.connect(fx.address())) return;
    while (!stop_readers.load()) {
      const Expected<Json> r =
          client.call(req({{"verb", Json("analyze")}, {"circuit", Json("e1")}}));
      if (!r || !r->get("ok").as_bool(false)) {
        failures.fetch_add(1);
        return;
      }
    }
  });
  for (std::thread& t : threads) t.join();
  stop_readers.store(true);
  reader.join();
  EXPECT_EQ(failures.load(), 0);

  // Every batch was atomic and they serialized: no mutation was lost — the
  // generation counter advanced exactly once per applied edit (2 per batch,
  // plus this probe's label edit), and analyzes never tore a batch.
  Client check;
  ASSERT_TRUE(check.connect(fx.address()));
  Json edits = Json::array();
  edits.push(req({{"op", Json("set_path_label")}, {"path", Json(0L)}, {"label", Json("x")}}));
  const Expected<Json> gen_probe = check.call(req({{"verb", Json("edit_batch")},
                                                   {"circuit", Json("e1")},
                                                   {"edits", std::move(edits)}}));
  ASSERT_TRUE(gen_probe);
  EXPECT_EQ(gen_probe->get("result").get("generation").as_long(0),
            kWriters * kBatches * 2 + 1);
}

TEST(ServeServer, StopDrainsInFlightRequests) {
  TcpServerFixture fx;
  Client client;
  ASSERT_TRUE(client.connect(fx.address()));
  ASSERT_TRUE(client.call(req({{"verb", Json("load")}, {"circuit", Json("e1")},
                               {"builtin", Json("example1")}})));
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(client.send(req({{"verb", Json("analyze")}, {"circuit", Json("e1")}})));
  }
  fx.server.stop();  // must not hang or crash with requests in flight
  SUCCEED();
}

}  // namespace
}  // namespace mintc::serve
