// The `status` verb: one self-contained HTML document with every section of
// the live ops dashboard. These tests pin the envelope shape, the
// single-document invariants (no scripts, exactly one DOCTYPE) and that the
// sections reflect real service state — traffic in the slow table, history
// samples in the sparkline section, worker rows when the transport installs
// its provider.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "base/thread_pool.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/service.h"

namespace mintc::serve {
namespace {

Json req(std::initializer_list<std::pair<std::string, Json>> fields) {
  Json r = Json::object();
  for (const auto& [k, v] : fields) r.set(k, v);
  return r;
}

Json expect_ok(TimingService& service, const Json& request) {
  const Json response = service.handle(request);
  EXPECT_TRUE(response.get("ok").as_bool(false)) << response.dump();
  return response;
}

Json load_example1(TimingService& service, const std::string& key) {
  return expect_ok(service,
                   req({{"verb", Json("load")}, {"circuit", Json(key)},
                        {"builtin", Json("example1")}}));
}

size_t count_occurrences(const std::string& haystack, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

class ServeStatusTest : public ::testing::Test {
 protected:
  // The metrics registry is process-wide; status renders from it.
  void SetUp() override { obs::MetricsRegistry::instance().reset(); }
};

TEST_F(ServeStatusTest, StatusVerbReturnsOneSelfContainedHtmlDocument) {
  TimingService service;
  load_example1(service, "e1");
  const Json response = expect_ok(service, req({{"verb", Json("status")}}));
  const Json& result = response.get("result");
  EXPECT_EQ(result.get("format").as_string(), "html");
  const std::string html = result.get("content").as_string();

  // Single document, self-contained: no scripts, no external assets, one
  // DOCTYPE, balanced html tags.
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_EQ(html.substr(html.size() - 8), "</html>\n");
  EXPECT_EQ(count_occurrences(html, "<!DOCTYPE"), 1u);
  EXPECT_EQ(count_occurrences(html, "<html"), 1u);
  EXPECT_EQ(count_occurrences(html, "</html>"), 1u);
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("src=\"http"), std::string::npos);
  EXPECT_NE(html.find("<style>"), std::string::npos);

  // Every dashboard section renders, even on a quiet service.
  for (const char* section :
       {"recent history", "request latency (us)", "attributed CPU per request (us)",
        "edge relaxations per request", "session pool", "result cache",
        "slowest requests", "span profiler"}) {
    EXPECT_NE(html.find(section), std::string::npos) << section;
  }
}

TEST_F(ServeStatusTest, IdentityAndTrafficShowUp) {
  TimingService service;
  load_example1(service, "e1");
  expect_ok(service, req({{"verb", Json("analyze")}, {"circuit", Json("e1")}}));
  // A traced request: its 16-hex id must land in the slow-request table.
  expect_ok(service, req({{"verb", Json("analyze")}, {"circuit", Json("e1")},
                          {"detail", Json(true)}, {"trace", Json("deadbeef01")}}));

  const std::string html = service.status_html();
  const obs::BuildInfo& build = obs::build_info();
  EXPECT_NE(html.find(build.version), std::string::npos);
  EXPECT_NE(html.find(build.git), std::string::npos);

  // Slow table: the analyze rows carry the verb, circuit key and trace id;
  // untraced rows render an em-dash placeholder.
  EXPECT_NE(html.find("<td>analyze</td>"), std::string::npos) << html;
  EXPECT_NE(html.find("<td>e1</td>"), std::string::npos);
  EXPECT_NE(html.find("000000deadbeef01"), std::string::npos);
  EXPECT_NE(html.find("&mdash;"), std::string::npos);
  // Session pool table lists the loaded circuit.
  EXPECT_NE(html.find("session pool"), std::string::npos);
}

TEST_F(ServeStatusTest, HistorySamplesFeedTheSparklines) {
  TimingService service;
  load_example1(service, "e1");
  expect_ok(service, req({{"verb", Json("analyze")}, {"circuit", Json("e1")}}));
  service.record_history_sample();
  service.record_history_sample();
  EXPECT_EQ(service.history().size(), 2u);

  const std::string html = service.status_html();
  EXPECT_NE(html.find("2 of "), std::string::npos) << html;
  EXPECT_NE(html.find("requests/s"), std::string::npos);
  EXPECT_NE(html.find("latency p95 (us)"), std::string::npos);
  // Sparklines are inline SVG polylines.
  EXPECT_NE(html.find("<polyline"), std::string::npos);
}

TEST_F(ServeStatusTest, WorkerTableAppearsOnlyWithAProvider) {
  TimingService service;
  EXPECT_EQ(service.status_html().find("transport workers"), std::string::npos);

  service.set_worker_stats_provider([] {
    std::vector<base::ThreadPool::WorkerStats> workers(2);
    workers[0].executed = 7;
    workers[0].busy = true;
    workers[1].executed = 3;
    return workers;
  });
  const std::string html = service.status_html();
  EXPECT_NE(html.find("transport workers"), std::string::npos);
  EXPECT_NE(html.find("<td>7</td>"), std::string::npos) << html;
  EXPECT_NE(html.find("busy"), std::string::npos);

  service.set_worker_stats_provider(nullptr);
  EXPECT_EQ(service.status_html().find("transport workers"), std::string::npos);
}

TEST_F(ServeStatusTest, TopParameterClampsAndSizesTheSlowTable) {
  // Only stats traffic: every slow-log row renders "<td>stats</td>", so the
  // row count is exactly what `top` admits.
  TimingService service;
  for (int i = 0; i < 6; ++i) {
    expect_ok(service, req({{"verb", Json("stats")}}));
  }

  const Json top1 = expect_ok(service, req({{"verb", Json("status")}, {"top", Json(1L)}}));
  const Json top50 = expect_ok(service, req({{"verb", Json("status")}, {"top", Json(50L)}}));
  const std::string html1 = top1.get("result").get("content").as_string();
  const std::string html50 = top50.get("result").get("content").as_string();
  EXPECT_EQ(count_occurrences(html1, "<td>stats</td>"), 1u) << html1;
  EXPECT_GT(count_occurrences(html50, "<td>stats</td>"), 1u);

  // Out-of-range values clamp instead of erroring.
  expect_ok(service, req({{"verb", Json("status")}, {"top", Json(0L)}}));
  expect_ok(service, req({{"verb", Json("status")}, {"top", Json(100000L)}}));
}

TEST_F(ServeStatusTest, StatusResponsesAreNotCached) {
  TimingService service;
  const Json first = expect_ok(service, req({{"verb", Json("status")}}));
  const Json second = expect_ok(service, req({{"verb", Json("status")}}));
  EXPECT_FALSE(first.get("cached").as_bool(true));
  EXPECT_FALSE(second.get("cached").as_bool(true));
  // The second render reflects the first status request in the counters.
  EXPECT_GE(obs::MetricsRegistry::instance().counter("serve.requests").value(), 2);
}

}  // namespace
}  // namespace mintc::serve
