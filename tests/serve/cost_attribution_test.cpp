// Per-request cost attribution, end to end through TimingService::handle():
// the envelope "cost" block must reconcile with the engine's own EngineStats
// for the same content, stay OUT of the (cacheable) result payload, and
// aggregate shard work when the parallel engine runs.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "circuits/example1.h"
#include "circuits/synthetic.h"
#include "parser/lct.h"
#include "serve/service.h"
#include "sta/analysis.h"
#include "sta/session.h"

namespace mintc::serve {
namespace {

Json req(std::initializer_list<std::pair<std::string, Json>> fields) {
  Json r = Json::object();
  for (const auto& [k, v] : fields) r.set(k, v);
  return r;
}

Json expect_ok(TimingService& service, const Json& request) {
  const Json response = service.handle(request);
  EXPECT_TRUE(response.get("ok").as_bool(false)) << response.dump();
  return response;
}

Json load_example1(TimingService& service, const std::string& key) {
  return expect_ok(service,
                   req({{"verb", Json("load")}, {"circuit", Json(key)},
                        {"builtin", Json("example1")}}));
}

ClockSchedule schedule_from(const Json& s) {
  ClockSchedule out;
  out.cycle = s.num_or("cycle", 0.0);
  for (const Json& v : s.get("start").items()) out.start.push_back(v.as_number());
  for (const Json& v : s.get("width").items()) out.width.push_back(v.as_number());
  return out;
}

TEST(ServeCost, NoCostBlockUnlessRequested) {
  TimingService service;
  load_example1(service, "e1");
  const Json plain =
      expect_ok(service, req({{"verb", Json("analyze")}, {"circuit", Json("e1")}}));
  EXPECT_FALSE(plain.get("cost").is_object()) << plain.dump();
  // An explicit false is false, not "mentioned therefore on".
  const Json declined = expect_ok(service, req({{"verb", Json("analyze")},
                                                {"circuit", Json("e1")},
                                                {"cost", Json(false)}}));
  EXPECT_FALSE(declined.get("cost").is_object()) << declined.dump();
}

TEST(ServeCost, ScalarAnalyzeCostMatchesEngineStats) {
  // Cache off so the analyze below is a real solve, not a rendered replay.
  ServiceConfig config;
  config.cache_bytes = 0;
  TimingService service(config);
  const Json loaded = load_example1(service, "e1").get("result");

  const Json response = expect_ok(service, req({{"verb", Json("analyze")},
                                                {"circuit", Json("e1")},
                                                {"cost", Json(true)}}));
  const Json& cost = response.get("cost");
  ASSERT_TRUE(cost.is_object()) << response.dump();

  // Mirror the served session exactly: same circuit, the schedule the load
  // response reported, same options — a fresh session whose FIRST analyze
  // does the same departure + early(hold) fixpoint work the service just
  // charged to the account.
  sta::AnalysisOptions options;
  options.check_hold = true;
  options.num_threads = 0;
  sta::AnalysisSession mirror(circuits::example1(), schedule_from(loaded.get("schedule")),
                              options);
  const sta::TimingReport& report = mirror.analyze();

  EXPECT_GT(report.stats.edge_relaxations, 0);
  EXPECT_EQ(cost.long_or("relaxations", -1), report.stats.edge_relaxations);
  // EngineStats.sweeps covers only the departure fixpoint; the account adds
  // the early (hold) fixpoint's sweeps on top.
  EXPECT_GE(cost.long_or("sweeps", -1), report.stats.sweeps);
  // Departure fixpoint + early fixpoint = two charged solve completions.
  EXPECT_EQ(cost.long_or("solves", -1), 2);
  EXPECT_GE(cost.long_or("cpu_us", -1), 0);
}

TEST(ServeCost, CachedHitChargesNoEngineWork) {
  TimingService service;  // cache on
  load_example1(service, "e1");
  const Json request = req({{"verb", Json("analyze")}, {"circuit", Json("e1")},
                            {"cost", Json(true)}});
  const Json first = expect_ok(service, request);
  const Json second = expect_ok(service, request);
  ASSERT_TRUE(second.get("cached").as_bool(false)) << second.dump();

  EXPECT_GT(first.get("cost").long_or("relaxations", 0), 0) << first.dump();
  const Json& cost = second.get("cost");
  ASSERT_TRUE(cost.is_object()) << second.dump();
  EXPECT_EQ(cost.long_or("relaxations", -1), 0);
  EXPECT_EQ(cost.long_or("solves", -1), 0);
  EXPECT_GE(cost.long_or("cpu_us", -1), 0);  // parse/render CPU still charged
}

TEST(ServeCost, ResultPayloadIsIdenticalWithAndWithoutCost) {
  // The cost block lives on the ENVELOPE: a cached payload must replay
  // byte-identically no matter which requests asked for attribution.
  TimingService service;
  load_example1(service, "e1");
  const Json with_cost = expect_ok(service, req({{"verb", Json("analyze")},
                                                 {"circuit", Json("e1")},
                                                 {"cost", Json(true)}}));
  const Json without = expect_ok(service, req({{"verb", Json("analyze")},
                                               {"circuit", Json("e1")}}));
  EXPECT_TRUE(without.get("cached").as_bool(false));
  EXPECT_EQ(with_cost.get("result").dump(), without.get("result").dump());
  EXPECT_TRUE(with_cost.get("cost").is_object());
  EXPECT_FALSE(without.get("cost").is_object());
}

TEST(ServeCost, TelemetryOffStillEchoesAZeroCostBlock) {
  // The "cost" field is protocol; attribution is telemetry. With telemetry
  // off nothing charges the account, but the opt-in echo still answers —
  // with zeros — so clients need not special-case server tuning.
  ServiceConfig config;
  config.telemetry = false;
  TimingService service(config);
  load_example1(service, "e1");
  const Json response = expect_ok(service, req({{"verb", Json("analyze")},
                                                {"circuit", Json("e1")},
                                                {"cost", Json(true)}}));
  const Json& cost = response.get("cost");
  ASSERT_TRUE(cost.is_object()) << response.dump();
  EXPECT_EQ(cost.long_or("cpu_us", -1), 0);
  EXPECT_EQ(cost.long_or("relaxations", -1), 0);
  EXPECT_EQ(cost.long_or("solves", -1), 0);
}

TEST(ServeCost, ParallelEngineAggregatesShardWork) {
  // With the SCC-parallel engine the relaxations are charged from the pool
  // shards (run_chain), not the handler thread — the account must still see
  // them all. Use a circuit big enough that the parallel path does real work.
  ServiceConfig config;
  config.cache_bytes = 0;
  config.analyze_threads = 2;
  TimingService service(config);

  circuits::SyntheticParams params;
  params.num_phases = 3;
  params.num_stages = 6;
  params.latches_per_stage = 3;
  params.fanin = 2;
  const Circuit circuit = circuits::synthetic_circuit(params, 42);
  expect_ok(service, req({{"verb", Json("load")}, {"circuit", Json("syn")},
                          {"text", Json(parser::write_circuit(circuit))}}));

  const Json response = expect_ok(service, req({{"verb", Json("analyze")},
                                                {"circuit", Json("syn")},
                                                {"cost", Json(true)}}));
  const Json& cost = response.get("cost");
  ASSERT_TRUE(cost.is_object()) << response.dump();
  EXPECT_GT(cost.long_or("relaxations", 0), 0);
  EXPECT_GE(cost.long_or("solves", 0), 1);
  EXPECT_GE(cost.long_or("cpu_us", -1), 0);
}

}  // namespace
}  // namespace mintc::serve
