// Framing and envelope tests for the line-delimited JSON wire protocol.
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <string>

namespace mintc::serve {
namespace {

void feed(FrameReader& r, const std::string& s) { r.feed(s.data(), s.size()); }

TEST(ServeProtocol, FrameReaderSplitsCompleteLines) {
  FrameReader r;
  feed(r, "one\ntwo\nthr");
  EXPECT_EQ(r.next_line().value_or("-"), "one");
  EXPECT_EQ(r.next_line().value_or("-"), "two");
  EXPECT_FALSE(r.next_line().has_value());  // partial line buffered
  feed(r, "ee\n");
  EXPECT_EQ(r.next_line().value_or("-"), "three");
  EXPECT_FALSE(r.overflowed());
}

TEST(ServeProtocol, FrameReaderStripsCarriageReturn) {
  FrameReader r;
  feed(r, "a\r\n\r\nb\n");
  EXPECT_EQ(r.next_line().value_or("-"), "a");
  EXPECT_EQ(r.next_line().value_or("-"), "");
  EXPECT_EQ(r.next_line().value_or("-"), "b");
}

TEST(ServeProtocol, FrameReaderSurvivesBytewiseFeeding) {
  FrameReader r;
  const std::string wire = "{\"verb\":\"stats\"}\n{\"verb\":\"min\"}\n";
  for (const char c : wire) r.feed(&c, 1);
  EXPECT_EQ(r.next_line().value_or("-"), "{\"verb\":\"stats\"}");
  EXPECT_EQ(r.next_line().value_or("-"), "{\"verb\":\"min\"}");
}

TEST(ServeProtocol, OverflowLatchesOnUnterminatedFrame) {
  FrameReader r(16);
  feed(r, std::string(17, 'x'));  // no newline, over the cap
  EXPECT_TRUE(r.overflowed());
  // A newline cannot resync an overflowed reader: the stream is abandoned.
  feed(r, "\nok\n");
  EXPECT_TRUE(r.overflowed());
}

TEST(ServeProtocol, CompleteLinesUnderCapDoNotOverflow) {
  FrameReader r(16);
  feed(r, "0123456789\nabc\n");
  EXPECT_EQ(r.next_line().value_or("-"), "0123456789");
  EXPECT_EQ(r.next_line().value_or("-"), "abc");
  EXPECT_FALSE(r.overflowed());
}

TEST(ServeProtocol, ParseRequestRequiresObjectWithStringVerb) {
  EXPECT_TRUE(parse_request(R"({"verb": "analyze", "circuit": "c"})"));
  EXPECT_FALSE(parse_request("[1,2,3]"));
  EXPECT_FALSE(parse_request(R"({"circuit": "c"})"));
  EXPECT_FALSE(parse_request(R"({"verb": 7})"));
  EXPECT_FALSE(parse_request("not json"));
}

TEST(ServeProtocol, ParseRequestEnforcesByteCap) {
  std::string big = R"({"verb": "load", "text": ")";
  big += std::string(64, 'x');
  big += "\"}";
  EXPECT_TRUE(parse_request(big));
  EXPECT_FALSE(parse_request(big, 32));
}

TEST(ServeProtocol, EnvelopesEchoTheId) {
  Json result = Json::object();
  result.set("n", Json(1L));
  const Json ok = ok_response(Json(7L), std::move(result), true);
  EXPECT_EQ(ok.get("id").as_long(0), 7);
  EXPECT_TRUE(ok.get("ok").as_bool(false));
  EXPECT_TRUE(ok.get("cached").as_bool(false));
  EXPECT_EQ(ok.get("result").get("n").as_long(0), 1);

  const Json err = error_response(Json("req-9"), "not_loaded", "no such circuit");
  EXPECT_EQ(err.get("id").as_string(), "req-9");
  EXPECT_FALSE(err.get("ok").as_bool(true));
  EXPECT_EQ(err.get("error").get("kind").as_string(), "not_loaded");

  const Json anon = error_response(Json(), "unknown_verb", "nope");
  EXPECT_TRUE(anon.get("id").is_null());
}

TEST(ServeProtocol, EncodeFrameIsExactlyOneLine) {
  Json result = Json::object();
  result.set("text", Json(std::string("two\nlines")));
  const std::string frame = encode_frame(ok_response(Json(1L), std::move(result), false));
  ASSERT_FALSE(frame.empty());
  EXPECT_EQ(frame.back(), '\n');
  EXPECT_EQ(frame.find('\n'), frame.size() - 1);  // no embedded newlines
}

TEST(ServeProtocol, TraceFieldAbsentIsInactive) {
  const Expected<Json> request = parse_request(R"({"verb": "analyze"})");
  ASSERT_TRUE(request);
  const Expected<TraceField> trace = parse_trace_field(*request);
  ASSERT_TRUE(trace);
  EXPECT_FALSE(trace->present);
  EXPECT_FALSE(trace->context.active());
}

TEST(ServeProtocol, TraceFieldStringFormRoundTrips) {
  Json request = Json::object();
  request.set("verb", Json("analyze"));
  request.set("trace", Json(trace_id_hex(0xdeadbeef01ull)));
  const Expected<TraceField> trace = parse_trace_field(request);
  ASSERT_TRUE(trace);
  EXPECT_TRUE(trace->present);
  EXPECT_TRUE(trace->context.sampled);  // string form implies sampled
  EXPECT_EQ(trace->context.trace_id, 0xdeadbeef01ull);
  EXPECT_TRUE(trace->context.active());
  EXPECT_EQ(trace_id_hex(trace->context.trace_id), "000000deadbeef01");
}

TEST(ServeProtocol, TraceFieldObjectFormCarriesSamplingFlag) {
  Json request = Json::object();
  Json field = Json::object();
  field.set("id", Json("1F00"));  // upper-case hex accepted
  field.set("sampled", Json(false));
  request.set("trace", std::move(field));
  const Expected<TraceField> trace = parse_trace_field(request);
  ASSERT_TRUE(trace);
  EXPECT_TRUE(trace->present);
  EXPECT_EQ(trace->context.trace_id, 0x1f00u);
  EXPECT_FALSE(trace->context.sampled);
  EXPECT_FALSE(trace->context.active());  // id present but unsampled
}

TEST(ServeProtocol, TraceFieldRejectsMalformedIds) {
  const auto expect_rejected = [](Json trace_value) {
    Json request = Json::object();
    request.set("verb", Json("analyze"));
    request.set("trace", std::move(trace_value));
    const Expected<TraceField> trace = parse_trace_field(request);
    EXPECT_FALSE(trace.has_value());
    if (!trace) EXPECT_EQ(trace.error().kind, ErrorKind::kInvalidArgument);
  };
  expect_rejected(Json("xyz"));                 // not hex
  expect_rejected(Json(""));                    // empty
  expect_rejected(Json("0"));                   // zero id: reserved
  expect_rejected(Json("0000000000000000"));    // zero, fully spelled
  expect_rejected(Json("11112222333344445"));   // 17 digits: oversized
  expect_rejected(Json(7.0));                   // wrong type entirely
  Json no_id = Json::object();
  no_id.set("sampled", Json(true));
  expect_rejected(std::move(no_id));            // object form without id
  Json numeric_id = Json::object();
  numeric_id.set("id", Json(5.0));
  expect_rejected(std::move(numeric_id));       // id must be a hex STRING
}

TEST(ServeProtocol, TraceIdHexIsFixedWidthLowercase) {
  EXPECT_EQ(trace_id_hex(1), "0000000000000001");
  EXPECT_EQ(trace_id_hex(0xffffffffffffffffull), "ffffffffffffffff");
  EXPECT_EQ(trace_id_hex(0xABCDEFull), "0000000000abcdef");
}

}  // namespace
}  // namespace mintc::serve
