// Framing and envelope tests for the line-delimited JSON wire protocol.
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <string>

namespace mintc::serve {
namespace {

void feed(FrameReader& r, const std::string& s) { r.feed(s.data(), s.size()); }

TEST(ServeProtocol, FrameReaderSplitsCompleteLines) {
  FrameReader r;
  feed(r, "one\ntwo\nthr");
  EXPECT_EQ(r.next_line().value_or("-"), "one");
  EXPECT_EQ(r.next_line().value_or("-"), "two");
  EXPECT_FALSE(r.next_line().has_value());  // partial line buffered
  feed(r, "ee\n");
  EXPECT_EQ(r.next_line().value_or("-"), "three");
  EXPECT_FALSE(r.overflowed());
}

TEST(ServeProtocol, FrameReaderStripsCarriageReturn) {
  FrameReader r;
  feed(r, "a\r\n\r\nb\n");
  EXPECT_EQ(r.next_line().value_or("-"), "a");
  EXPECT_EQ(r.next_line().value_or("-"), "");
  EXPECT_EQ(r.next_line().value_or("-"), "b");
}

TEST(ServeProtocol, FrameReaderSurvivesBytewiseFeeding) {
  FrameReader r;
  const std::string wire = "{\"verb\":\"stats\"}\n{\"verb\":\"min\"}\n";
  for (const char c : wire) r.feed(&c, 1);
  EXPECT_EQ(r.next_line().value_or("-"), "{\"verb\":\"stats\"}");
  EXPECT_EQ(r.next_line().value_or("-"), "{\"verb\":\"min\"}");
}

TEST(ServeProtocol, OverflowLatchesOnUnterminatedFrame) {
  FrameReader r(16);
  feed(r, std::string(17, 'x'));  // no newline, over the cap
  EXPECT_TRUE(r.overflowed());
  // A newline cannot resync an overflowed reader: the stream is abandoned.
  feed(r, "\nok\n");
  EXPECT_TRUE(r.overflowed());
}

TEST(ServeProtocol, CompleteLinesUnderCapDoNotOverflow) {
  FrameReader r(16);
  feed(r, "0123456789\nabc\n");
  EXPECT_EQ(r.next_line().value_or("-"), "0123456789");
  EXPECT_EQ(r.next_line().value_or("-"), "abc");
  EXPECT_FALSE(r.overflowed());
}

TEST(ServeProtocol, ParseRequestRequiresObjectWithStringVerb) {
  EXPECT_TRUE(parse_request(R"({"verb": "analyze", "circuit": "c"})"));
  EXPECT_FALSE(parse_request("[1,2,3]"));
  EXPECT_FALSE(parse_request(R"({"circuit": "c"})"));
  EXPECT_FALSE(parse_request(R"({"verb": 7})"));
  EXPECT_FALSE(parse_request("not json"));
}

TEST(ServeProtocol, ParseRequestEnforcesByteCap) {
  std::string big = R"({"verb": "load", "text": ")";
  big += std::string(64, 'x');
  big += "\"}";
  EXPECT_TRUE(parse_request(big));
  EXPECT_FALSE(parse_request(big, 32));
}

TEST(ServeProtocol, EnvelopesEchoTheId) {
  Json result = Json::object();
  result.set("n", Json(1L));
  const Json ok = ok_response(Json(7L), std::move(result), true);
  EXPECT_EQ(ok.get("id").as_long(0), 7);
  EXPECT_TRUE(ok.get("ok").as_bool(false));
  EXPECT_TRUE(ok.get("cached").as_bool(false));
  EXPECT_EQ(ok.get("result").get("n").as_long(0), 1);

  const Json err = error_response(Json("req-9"), "not_loaded", "no such circuit");
  EXPECT_EQ(err.get("id").as_string(), "req-9");
  EXPECT_FALSE(err.get("ok").as_bool(true));
  EXPECT_EQ(err.get("error").get("kind").as_string(), "not_loaded");

  const Json anon = error_response(Json(), "unknown_verb", "nope");
  EXPECT_TRUE(anon.get("id").is_null());
}

TEST(ServeProtocol, EncodeFrameIsExactlyOneLine) {
  Json result = Json::object();
  result.set("text", Json(std::string("two\nlines")));
  const std::string frame = encode_frame(ok_response(Json(1L), std::move(result), false));
  ASSERT_FALSE(frame.empty());
  EXPECT_EQ(frame.back(), '\n');
  EXPECT_EQ(frame.find('\n'), frame.size() - 1);  // no embedded newlines
}

}  // namespace
}  // namespace mintc::serve
