// Soak: many concurrent edit/analyze streams against one TimingService.
//
// The tentpole acceptance gate: >= 1024 logical streams over >= 8 distinct
// base circuits, driven concurrently, with ZERO lost or corrupt responses
// and every analysis BIT-identical to a direct sta::check_schedule of the
// same content.
//
// The big soak drives TimingService::handle_line directly (full request
// encode -> parse -> dispatch -> response encode -> parse path, no fd
// limits); a smaller companion soak runs the same traffic through real
// sockets (SocketServer + Client). Scale knobs for slow runners (TSan CI):
//   MINTC_SOAK_STREAMS  logical stream count   (default 1024)
//   MINTC_SOAK_ROUNDS   edit+analyze rounds    (default 3)
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "circuits/synthetic.h"
#include "obs/trace.h"
#include "parser/lct.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/service.h"
#include "sta/analysis.h"

namespace mintc::serve {
namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atoi(v) : fallback;
}

constexpr int kBaseCircuits = 8;

Circuit base_circuit(int which) {
  circuits::SyntheticParams params;
  params.num_phases = 2 + which % 3;
  params.num_stages = 4 + which % 4;
  params.latches_per_stage = 2 + which % 2;
  params.fanin = 2;
  params.extra_long_edges = which % 5;
  return circuits::synthetic_circuit(params, 2000 + static_cast<uint64_t>(which));
}

Json req(std::initializer_list<std::pair<std::string, Json>> fields) {
  Json r = Json::object();
  for (const auto& [k, v] : fields) r.set(k, v);
  return r;
}

ClockSchedule schedule_from(const Json& s) {
  ClockSchedule out;
  out.cycle = s.num_or("cycle", 0.0);
  for (const Json& v : s.get("start").items()) out.start.push_back(v.as_number());
  for (const Json& v : s.get("width").items()) out.width.push_back(v.as_number());
  return out;
}

/// Bit-compare a served detail analysis against check_schedule of `mirror`.
/// Returns "" when identical.
std::string compare_bitwise(const Json& result, const Circuit& mirror,
                            const ClockSchedule& schedule) {
  sta::AnalysisOptions options;
  options.check_hold = true;
  const sta::TimingReport local = sta::check_schedule(mirror, schedule, options);
  if (result.bool_or("feasible", !local.feasible) != local.feasible) return "feasible";
  if (result.num_or("worst_setup_slack", local.worst_setup_slack + 1) !=
      local.worst_setup_slack) {
    return "worst_setup_slack";
  }
  const Json& elements = result.get("elements");
  if (static_cast<size_t>(elements.size()) != local.elements.size()) return "element count";
  for (size_t i = 0; i < local.elements.size(); ++i) {
    const Json& e = elements.at(i);
    if (e.num_or("departure", local.elements[i].departure + 1) !=
        local.elements[i].departure) {
      return "departure[" + std::to_string(i) + "]";
    }
    if (e.num_or("setup_slack", local.elements[i].setup_slack + 1) !=
        local.elements[i].setup_slack) {
      return "setup_slack[" + std::to_string(i) + "]";
    }
  }
  return "";
}

struct StreamStats {
  std::atomic<long> responses{0};
  std::atomic<long> errors{0};
  std::atomic<long> mismatches{0};
  std::mutex mu;
  std::string first_problem;

  void problem(const std::string& what) {
    const std::lock_guard<std::mutex> lock(mu);
    if (first_problem.empty()) first_problem = what;
  }
};

/// One logical stream: load its own circuit key, then `rounds` of
/// edit_batch + analyze(detail), each analysis bit-compared locally.
/// `call` abstracts the transport (handle_line or a socket Client).
template <typename CallFn>
void run_stream(CallFn&& call, int stream, int rounds, StreamStats& stats) {
  const std::string key = "soak-" + std::to_string(stream);
  const std::string text =
      parser::write_circuit(base_circuit(stream % kBaseCircuits));
  // The mirror is the circuit as the server parses it.
  Expected<Circuit> reparsed = parser::parse_circuit(text);
  if (!reparsed) {
    stats.errors.fetch_add(1);
    stats.problem("mirror parse: " + reparsed.error().to_string());
    return;
  }
  Circuit mirror = std::move(*reparsed);

  const Json loaded = call(req({{"verb", Json("load")}, {"circuit", Json(key)},
                                {"text", Json(text)}}));
  stats.responses.fetch_add(1);
  if (!loaded.get("ok").as_bool(false)) {
    stats.errors.fetch_add(1);
    stats.problem("load: " + loaded.dump());
    return;
  }
  const ClockSchedule schedule =
      schedule_from(loaded.get("result").get("schedule"));

  for (int round = 0; round < rounds; ++round) {
    const int p = (stream * 7 + round * 13) % mirror.num_paths();
    const double delay = mirror.path(p).delay + 0.125;
    Json edits = Json::array();
    edits.push(req({{"op", Json("set_path_delay")}, {"path", Json(static_cast<long>(p))},
                    {"delay", Json(delay)}}));
    const Json edited = call(req({{"verb", Json("edit_batch")},
                                  {"circuit", Json(key)},
                                  {"edits", std::move(edits)}}));
    stats.responses.fetch_add(1);
    if (!edited.get("ok").as_bool(false)) {
      stats.errors.fetch_add(1);
      stats.problem("edit: " + edited.dump());
      return;
    }
    mirror.set_path_delay(p, delay);

    const Json analyzed = call(req({{"verb", Json("analyze")}, {"circuit", Json(key)},
                                    {"detail", Json(true)}}));
    stats.responses.fetch_add(1);
    if (!analyzed.get("ok").as_bool(false)) {
      stats.errors.fetch_add(1);
      stats.problem("analyze: " + analyzed.dump());
      return;
    }
    const std::string mismatch =
        compare_bitwise(analyzed.get("result"), mirror, schedule);
    if (!mismatch.empty()) {
      stats.mismatches.fetch_add(1);
      stats.problem("stream " + std::to_string(stream) + " round " +
                    std::to_string(round) + ": " + mismatch + " not bit-identical");
    }
  }
}

TEST(ServeSoak, ThousandStreamsInProcessBitIdentical) {
  const int streams = env_int("MINTC_SOAK_STREAMS", 1024);
  const int rounds = env_int("MINTC_SOAK_ROUNDS", 3);
  const int threads = 16;

  ServiceConfig config;
  config.cache_bytes = 8u << 20;   // small enough to churn
  config.session_bytes = 1u << 30; // keep every stream warm (bit-compare all)
  TimingService service(config);
  StreamStats stats;

  std::atomic<int> next{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int s = next.fetch_add(1); s < streams; s = next.fetch_add(1)) {
        run_stream(
            [&service](const Json& request) -> Json {
              const std::string frame = service.handle_line(request.dump());
              // The wire frame is re-parsed, so corruption anywhere in the
              // encode/decode path shows up as an error here.
              Expected<Json> response =
                  parse_json(std::string_view(frame).substr(0, frame.size() - 1));
              return response ? std::move(*response) : Json();
            },
            s, rounds, stats);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(stats.errors.load(), 0) << stats.first_problem;
  EXPECT_EQ(stats.mismatches.load(), 0) << stats.first_problem;
  EXPECT_EQ(stats.responses.load(), streams * (1 + 2 * rounds))
      << "lost responses";
  EXPECT_EQ(service.pool_stats().sessions, static_cast<size_t>(streams));
}

TEST(ServeSoak, SocketStreamsBitIdentical) {
  const int streams = env_int("MINTC_SOAK_SOCKET_STREAMS", 64);
  const int rounds = env_int("MINTC_SOAK_ROUNDS", 3);
  const int threads = 8;

  TimingService service;
  ServerConfig config;
  config.tcp_port = 0;
  config.num_threads = 4;
  SocketServer server(service, config);
  ASSERT_TRUE(server.start());
  const std::string address = "127.0.0.1:" + std::to_string(server.tcp_port());

  StreamStats stats;
  std::atomic<int> next{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      Client client;
      if (!client.connect(address)) {
        stats.errors.fetch_add(1);
        stats.problem("connect failed");
        return;
      }
      for (int s = next.fetch_add(1); s < streams; s = next.fetch_add(1)) {
        run_stream(
            [&client, &stats](Json request) -> Json {
              Expected<Json> response = client.call(std::move(request));
              if (!response) {
                stats.problem("transport: " + response.error().to_string());
                return Json();
              }
              return std::move(*response);
            },
            s, rounds, stats);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  server.stop();

  EXPECT_EQ(stats.errors.load(), 0) << stats.first_problem;
  EXPECT_EQ(stats.mismatches.load(), 0) << stats.first_problem;
  EXPECT_EQ(stats.responses.load(), streams * (1 + 2 * rounds));
}

// Telemetry must be an OBSERVER: with every request sampled (the worst
// case) and the ring bounded small enough to wrap, analyses remain
// bit-identical and every response echoes its request's trace id.
TEST(ServeSoak, FullySampledTrafficStaysBitIdentical) {
  const int streams = env_int("MINTC_SOAK_TRACED_STREAMS", 64);
  const int rounds = env_int("MINTC_SOAK_ROUNDS", 3);
  const int threads = 8;

  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_capacity(4096);  // small: force ring wrap under load
  tracer.clear();

  ServiceConfig config;
  config.session_bytes = 1u << 30;
  TimingService service(config);
  StreamStats stats;
  std::atomic<long> seq{0};
  std::atomic<long> echo_misses{0};

  std::atomic<int> next{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int s = next.fetch_add(1); s < streams; s = next.fetch_add(1)) {
        run_stream(
            [&](Json request) -> Json {
              const std::string id = trace_id_hex(
                  static_cast<std::uint64_t>(seq.fetch_add(1) + 1));
              request.set("trace", Json(id));  // 100% sampling
              const std::string frame = service.handle_line(request.dump());
              Expected<Json> response =
                  parse_json(std::string_view(frame).substr(0, frame.size() - 1));
              if (!response) return Json();
              if (response->get("trace").as_string() != id) echo_misses.fetch_add(1);
              return std::move(*response);
            },
            s, rounds, stats);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(stats.errors.load(), 0) << stats.first_problem;
  EXPECT_EQ(stats.mismatches.load(), 0) << stats.first_problem;
  EXPECT_EQ(stats.responses.load(), streams * (1 + 2 * rounds)) << "lost responses";
  EXPECT_EQ(echo_misses.load(), 0) << "responses must echo their trace id";
  EXPECT_GT(tracer.num_events(), 0u) << "sampling on: spans must be recorded";

  tracer.set_capacity(0);
  tracer.clear();
}

}  // namespace
}  // namespace mintc::serve
