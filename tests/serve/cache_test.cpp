// LRU / byte-budget / generation-invalidation tests for the result cache.
#include "serve/cache.h"

#include <gtest/gtest.h>

#include <string>

namespace mintc::serve {
namespace {

// kEntryOverhead is private; 128 mirrored here so budgets below are exact.
constexpr size_t kOverhead = 128;

TEST(ServeCache, MissThenHit) {
  ResultCache cache(1 << 20);
  EXPECT_FALSE(cache.get(1).has_value());
  cache.put(1, "c", 0, "value");
  EXPECT_EQ(cache.get(1).value_or("-"), "value");
  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 5 + kOverhead);
}

TEST(ServeCache, PutOnExistingKeyRefreshesTagsAndKeepsBytes) {
  // Keys are content-addressed: a re-put under the same key necessarily
  // carries identical content, so the implementation keeps the stored bytes
  // and only refreshes the (circuit, generation) tag + LRU position.
  ResultCache cache(1 << 20);
  cache.put(1, "c", 0, "value");
  cache.put(1, "c", 5, "value");
  EXPECT_EQ(cache.get(1).value_or("-"), "value");
  EXPECT_EQ(cache.stats().entries, 1u);
  // The refreshed generation tag protects the entry from invalidation of
  // generations older than 5.
  cache.invalidate("c", 5);
  EXPECT_TRUE(cache.get(1).has_value());
  cache.invalidate("c", 6);
  EXPECT_FALSE(cache.get(1).has_value());
}

TEST(ServeCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Budget fits exactly two 4-byte entries.
  ResultCache cache(2 * (4 + kOverhead));
  cache.put(1, "c", 0, "aaaa");
  cache.put(2, "c", 0, "bbbb");
  EXPECT_TRUE(cache.get(1).has_value());  // 1 is now most recently used
  cache.put(3, "c", 0, "cccc");           // evicts 2, the LRU entry
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(ServeCache, ValueLargerThanBudgetIsNotStored) {
  ResultCache cache(kOverhead + 4);
  cache.put(1, "c", 0, std::string(64, 'x'));
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ServeCache, ZeroBudgetDisablesCaching) {
  ResultCache cache(0);
  cache.put(1, "c", 0, "v");
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ServeCache, InvalidateDropsOlderGenerationsOfOneCircuit) {
  ResultCache cache(1 << 20);
  cache.put(1, "a", 3, "a-gen3");
  cache.put(2, "a", 5, "a-gen5");
  cache.put(3, "b", 1, "b-gen1");
  cache.invalidate("a", 5);  // drops generation < 5 entries of "a" only
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_TRUE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1);
}

TEST(ServeCache, InvalidateEverythingWithMaxGeneration) {
  ResultCache cache(1 << 20);
  cache.put(1, "a", 3, "x");
  cache.put(2, "a", 7, "y");
  cache.invalidate("a", ~0ull);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ServeCache, ClearKeepsBudgetAndCounters) {
  ResultCache cache(1 << 20);
  cache.put(1, "a", 0, "x");
  cache.clear();
  EXPECT_FALSE(cache.get(1).has_value());
  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(s.budget, 1u << 20);
  cache.put(1, "a", 0, "again");
  EXPECT_TRUE(cache.get(1).has_value());
}

}  // namespace
}  // namespace mintc::serve
