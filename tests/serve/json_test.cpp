// Strict-parser and bit-exact round-trip tests for the serve JSON layer.
#include "serve/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

namespace mintc::serve {
namespace {

Json parse_ok(const std::string& text) {
  Expected<Json> v = parse_json(text);
  EXPECT_TRUE(v) << text << ": " << (v ? "" : v.error().to_string());
  return v ? std::move(*v) : Json();
}

TEST(ServeJson, ParsesPrimitives) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_EQ(parse_ok("true").as_bool(false), true);
  EXPECT_EQ(parse_ok("false").as_bool(true), false);
  EXPECT_EQ(parse_ok("42").as_number(), 42.0);
  EXPECT_EQ(parse_ok("-7.5e2").as_number(), -750.0);
  EXPECT_EQ(parse_ok("\"hi\\n\\\"there\\\"\"").as_string(), "hi\n\"there\"");
  EXPECT_EQ(parse_ok("  [1, 2, 3]  ").size(), 3u);
}

TEST(ServeJson, ObjectKeepsInsertionOrderAndLooksUpByKey) {
  const Json v = parse_ok(R"({"zulu": 1, "alpha": 2, "zulu2": {"n": true}})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.fields().size(), 3u);
  EXPECT_EQ(v.fields()[0].first, "zulu");
  EXPECT_EQ(v.fields()[1].first, "alpha");
  EXPECT_EQ(v.get("alpha").as_number(), 2.0);
  EXPECT_TRUE(v.get("zulu2").get("n").as_bool(false));
  EXPECT_TRUE(v.get("missing").is_null());
}

TEST(ServeJson, DumpReparsesToEqualValue) {
  const std::string text =
      R"({"a": [1, 2.5, "x"], "b": {"c": null, "d": false}, "e": "q\"uote"})";
  const Json v = parse_ok(text);
  const Json again = parse_ok(v.dump());
  EXPECT_EQ(v, again);
}

TEST(ServeJson, DoublesRoundTripBitExactly) {
  // Values chosen to break naive %.15g rendering: many decimal digits, huge
  // and tiny magnitudes, and an actual departure value from the soak.
  const double cases[] = {0.1,
                          1.0 / 3.0,
                          29.352354500000047,
                          1e-300,
                          123456789.123456789,
                          std::nextafter(1.0, 2.0),
                          -2.2250738585072014e-308};
  for (const double want : cases) {
    const std::string text = json_double(want);
    const Json v = parse_ok(text);
    const double got = v.as_number();
    EXPECT_EQ(std::memcmp(&got, &want, sizeof got), 0)
        << text << " reparsed to " << got;
  }
}

TEST(ServeJson, NonFiniteDumpsAsFiniteJson) {
  // JSON has no Inf/NaN literal; the writer clamps instead of emitting
  // garbage the strict parser would reject.
  EXPECT_TRUE(parse_json(json_double(std::numeric_limits<double>::infinity())));
  EXPECT_TRUE(parse_json(json_double(std::nan(""))));
}

TEST(ServeJson, RejectsMalformedInput) {
  const char* bad[] = {"",        "{",        "[1, 2",       "{\"a\": }",
                       "nul",     "tru",      "01",          "1.2.3",
                       "\"unterminated", "{\"a\": 1} extra", "[1,]", "NaN",
                       "Infinity", "{'a': 1}", "{\"a\" 1}"};
  for (const char* text : bad) {
    EXPECT_FALSE(parse_json(text)) << "accepted: " << text;
  }
}

TEST(ServeJson, ErrorsCarryByteOffsets) {
  const Expected<Json> v = parse_json("{\"ok\": tru}");
  ASSERT_FALSE(v);
  EXPECT_NE(v.error().to_string().find("at byte"), std::string::npos);
}

TEST(ServeJson, DepthCapStopsRecursion) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_FALSE(parse_json(deep));
  JsonParseOptions loose;
  loose.max_depth = 300;
  EXPECT_TRUE(parse_json(deep, loose));
}

TEST(ServeJson, StringEscapesSurviveDump) {
  Json v = Json::object();
  v.set("s", Json(std::string("line1\nline2\ttab\x01" "end")));
  const std::string text = v.dump();
  EXPECT_EQ(text.find('\n'), std::string::npos);  // one-line frames
  EXPECT_EQ(parse_ok(text).get("s").as_string(),
            std::string("line1\nline2\ttab\x01" "end"));
}

}  // namespace
}  // namespace mintc::serve
