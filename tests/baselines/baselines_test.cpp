#include <gtest/gtest.h>

#include "baselines/binary_search.h"
#include "baselines/edge_triggered.h"
#include "circuits/example1.h"
#include "circuits/example2.h"
#include "opt/mlp.h"
#include "sta/analysis.h"

namespace mintc::baselines {
namespace {

TEST(SlotFraction, TwoPhase) {
  EXPECT_DOUBLE_EQ(slot_fraction(1, 2, 2), 0.5);
  EXPECT_DOUBLE_EQ(slot_fraction(2, 1, 2), 0.5);
  EXPECT_DOUBLE_EQ(slot_fraction(1, 1, 2), 1.0);  // same phase = full cycle
  EXPECT_DOUBLE_EQ(slot_fraction(2, 2, 2), 1.0);
}

TEST(SlotFraction, FourPhase) {
  EXPECT_DOUBLE_EQ(slot_fraction(1, 3, 4), 0.5);
  EXPECT_DOUBLE_EQ(slot_fraction(3, 2, 4), 0.75);
  EXPECT_DOUBLE_EQ(slot_fraction(4, 1, 4), 0.25);
}

TEST(EdgeTriggeredCpm, Example1HandComputed) {
  // Max over paths of (dq + delay + setup)/frac; Ld at Δ41=80 dominates:
  // (10+80+10)/0.5 = 200.
  const BaselineResult r = edge_triggered_cpm(circuits::example1(80.0));
  EXPECT_NEAR(r.cycle, 200.0, 1e-9);
  EXPECT_EQ(r.method, "edge-triggered CPM");
}

TEST(EdgeTriggeredCpm, AlwaysFeasibleWhenVerified) {
  // The CPM bound under the symmetric clock must pass the exact analysis:
  // edge-triggered margins are sufficient for latches.
  for (const double d41 : {0.0, 40.0, 80.0, 120.0}) {
    const BaselineResult r = edge_triggered_cpm(circuits::example1(d41));
    EXPECT_TRUE(r.feasible) << "d41=" << d41;
  }
}

TEST(JouppiBorrowing, BetweenMlpAndCpm) {
  for (const double d41 : {40.0, 80.0, 120.0}) {
    const Circuit c = circuits::example1(d41);
    const auto mlp = opt::minimize_cycle_time(c);
    ASSERT_TRUE(mlp);
    const BaselineResult et = edge_triggered_cpm(c);
    const BaselineResult jp = jouppi_borrowing(c);
    EXPECT_LE(jp.cycle, et.cycle + 1e-6) << "d41=" << d41;
    EXPECT_GE(jp.cycle, mlp->min_cycle - 1e-6) << "d41=" << d41;
  }
}

TEST(JouppiBorrowing, ActuallyBorrowsOnExample2) {
  const Circuit c = circuits::example2();
  const BaselineResult et = edge_triggered_cpm(c);
  const BaselineResult jp = jouppi_borrowing(c);
  EXPECT_LT(jp.cycle, et.cycle - 1.0);  // strictly better
}

TEST(ClockShape, SymmetricAndScaling) {
  const ClockShape s = ClockShape::symmetric(4);
  const ClockSchedule sch = s.at_cycle(200.0);
  EXPECT_DOUBLE_EQ(sch.s(3), 100.0);
  EXPECT_DOUBLE_EQ(sch.T(2), 50.0);
  EXPECT_EQ(sch.num_phases(), 4);
}

TEST(FixedShapeSearch, FindsMinimalFeasibleCycle) {
  const Circuit c = circuits::example1(60.0);
  const BaselineResult r = fixed_shape_search(c, ClockShape::symmetric(2));
  ASSERT_TRUE(r.feasible);
  // Just feasible at its own Tc; infeasible 1% below.
  EXPECT_TRUE(sta::check_schedule(c, r.schedule).feasible);
  EXPECT_FALSE(
      sta::check_schedule(c, ClockShape::symmetric(2).at_cycle(r.cycle * 0.99)).feasible);
}

TEST(NripReconstruction, OptimalExactlyAtSixty) {
  // The paper: "The NRIP algorithm produces an optimal solution for
  // Δ41 = 60 ns. For all other values of Δ41, the cycle time found by NRIP
  // is suboptimal."
  const auto mlp60 = opt::minimize_cycle_time(circuits::example1(60.0));
  ASSERT_TRUE(mlp60);
  const BaselineResult n60 = nrip_reconstruction(circuits::example1(60.0));
  EXPECT_NEAR(n60.cycle, mlp60->min_cycle, 1e-4);

  for (const double d41 : {80.0, 100.0}) {
    const auto mlp = opt::minimize_cycle_time(circuits::example1(d41));
    ASSERT_TRUE(mlp);
    const BaselineResult n = nrip_reconstruction(circuits::example1(d41));
    EXPECT_GT(n.cycle, mlp->min_cycle + 1.0) << "d41=" << d41;
  }
}

TEST(NripReconstruction, NeverBelowMlp) {
  for (double d41 = 0.0; d41 <= 160.0; d41 += 20.0) {
    const auto mlp = opt::minimize_cycle_time(circuits::example1(d41));
    ASSERT_TRUE(mlp);
    const BaselineResult n = nrip_reconstruction(circuits::example1(d41));
    EXPECT_GE(n.cycle, mlp->min_cycle - 1e-4) << "d41=" << d41;
  }
}

TEST(NripReconstruction, Example2GapMatchesPaper) {
  // Figs. 8-9: NRIP lands ~35% above the MLP optimum.
  const Circuit c = circuits::example2();
  const auto mlp = opt::minimize_cycle_time(c);
  ASSERT_TRUE(mlp);
  const BaselineResult n = nrip_reconstruction(c);
  const double gap = n.cycle / mlp->min_cycle - 1.0;
  EXPECT_NEAR(gap, 0.35, 0.02);
}

TEST(FixedShapeSearch, ImpossibleShapeGivesInfeasible) {
  // Zero-width phases cannot satisfy any setup time.
  const Circuit c = circuits::example1(80.0);
  ClockShape shape = ClockShape::symmetric(2);
  shape.width_frac = {0.0, 0.0};
  BinarySearchOptions opt;
  opt.hi_limit = 1e5;
  const BaselineResult r = fixed_shape_search(c, shape, opt);
  EXPECT_FALSE(r.feasible);
}

TEST(BestDutySearch, NeverWorseThanNrip) {
  for (const Circuit& c : {circuits::example1(80.0), circuits::example2()}) {
    const auto nrip = nrip_reconstruction(c);
    const auto best = best_duty_search(c, 10);
    ASSERT_TRUE(best.feasible) << c.name();
    EXPECT_LE(best.cycle, nrip.cycle + 1e-4) << c.name();
    const auto mlp = opt::minimize_cycle_time(c);
    ASSERT_TRUE(mlp);
    EXPECT_GE(best.cycle, mlp->min_cycle - 1e-4) << c.name();
  }
}

TEST(BestDutySearch, ReportsChosenDuty) {
  const auto best = best_duty_search(circuits::example1(80.0), 4);
  ASSERT_TRUE(best.feasible);
  EXPECT_NE(best.method.find("duty"), std::string::npos);
  // The found schedule is verified feasible by construction.
  EXPECT_TRUE(sta::check_schedule(circuits::example1(80.0), best.schedule).feasible);
}

TEST(Baselines, EmptyCircuitIsZero) {
  Circuit c("empty", 2);
  EXPECT_DOUBLE_EQ(edge_triggered_cpm(c).cycle, 0.0);
  EXPECT_DOUBLE_EQ(jouppi_borrowing(c).cycle, 0.0);
}

}  // namespace
}  // namespace mintc::baselines
