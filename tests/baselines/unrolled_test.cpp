#include "baselines/unrolled.h"

#include <gtest/gtest.h>

#include "circuits/example1.h"
#include "sta/analysis.h"
#include "sta/fixpoint.h"

namespace mintc::baselines {
namespace {

// A two-phase ring of 2n latches: the single feedback loop spans n cycles,
// so an unrolling window shorter than ~n cycles cannot see the loop
// constraint (the paper's critique of ATV).
Circuit long_ring(int n, double stage_delay) {
  Circuit c("ring" + std::to_string(n), 2);
  const int total = 2 * n;
  for (int i = 0; i < total; ++i) {
    c.add_latch("R" + std::to_string(i), (i % 2) + 1, 1.0, 2.0);
  }
  for (int i = 0; i < total; ++i) c.add_path(i, (i + 1) % total, stage_delay);
  return c;
}

TEST(Unrolled, AnalysisMatchesFixpointWhenConverged) {
  // On example 1 (loop spans 2 cycles) a generous window converges to the
  // exact least fixpoint.
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule sch(110.0, {0.0, 80.0}, {80.0, 30.0});
  const UnrolledAnalysis u = unrolled_analysis(c, sch, 16);
  EXPECT_TRUE(u.setup_ok);
  const sta::FixpointResult exact =
      sta::compute_departures(c, sch, std::vector<double>(4, 0.0));
  ASSERT_TRUE(exact.converged);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(u.final_departure[static_cast<size_t>(i)],
                exact.departure[static_cast<size_t>(i)], 1e-9);
  }
}

TEST(Unrolled, DetectsViolationWithinWindow) {
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule bad(90.0, {0.0, 60.0}, {60.0, 30.0});  // below Tc* = 110
  const UnrolledAnalysis u = unrolled_analysis(c, bad, 16);
  EXPECT_FALSE(u.setup_ok);
  EXPECT_GE(u.first_violation_cycle, 0);
}

TEST(Unrolled, MinTcMonotoneInWindow) {
  const Circuit c = long_ring(6, 60.0);
  const ClockShape shape = ClockShape::symmetric(2);
  double prev = 0.0;
  for (const int nc : {1, 2, 4, 8, 16, 32}) {
    const BaselineResult r = atv_unrolled(c, shape, nc);
    EXPECT_GE(r.cycle, prev - 1e-6) << "n_c=" << nc;
    prev = r.cycle;
  }
}

TEST(Unrolled, ShortWindowUnderestimatesLongLoop) {
  // The headline deficiency: with the loop spanning 6 cycles, n_c = 2 finds
  // a cycle time far below what the exact analysis accepts.
  const Circuit c = long_ring(6, 60.0);
  const ClockShape shape = ClockShape::symmetric(2);
  const BaselineResult narrow = atv_unrolled(c, shape, 2);
  const BaselineResult wide = atv_unrolled(c, shape, 64);
  const BaselineResult exact = fixed_shape_search(c, shape);
  EXPECT_LT(narrow.cycle, exact.cycle - 1.0);  // unsound underestimate
  // Near the threshold lateness accrues only ~1 ns per cycle, so even a
  // 64-cycle window still sits slightly below the exact answer — ATV-style
  // bounded unrolling approaches the truth from below, slowly.
  EXPECT_GT(wide.cycle, narrow.cycle + 1.0);
  EXPECT_LE(wide.cycle, exact.cycle + 1e-6);
  EXPECT_GT(wide.cycle, exact.cycle * 0.98);
  // And the exact engine rejects the narrow window's "solution".
  EXPECT_FALSE(sta::check_schedule(c, shape.at_cycle(narrow.cycle)).feasible);
}

TEST(Unrolled, AlwaysAnUnderestimateOfTheExactAnswer) {
  // The unrolled window checks a subset of the steady-state constraints, so
  // its minimum Tc can never exceed the exact fixed-shape answer.
  const ClockShape shape = ClockShape::symmetric(2);
  for (const int n : {2, 4, 6}) {
    const Circuit c = long_ring(n, 40.0);
    const BaselineResult exact = fixed_shape_search(c, shape);
    for (const int nc : {1, 2, 8, 32}) {
      const BaselineResult r = atv_unrolled(c, shape, nc);
      EXPECT_LE(r.cycle, exact.cycle + 1e-6) << "ring " << n << " n_c " << nc;
    }
  }
}

TEST(Unrolled, PowerOnTokensAbsentInFirstCycle) {
  // In cycle 0, cross-boundary fanin terms (C = 1) have no token yet: a
  // latch fed only across the boundary departs at its opening edge.
  Circuit c("t", 2);
  c.add_latch("A", 2, 1.0, 2.0);
  c.add_latch("B", 1, 1.0, 2.0);
  c.add_path("A", "B", 30.0);  // phi2 -> phi1 crosses the boundary
  const ClockSchedule sch = symmetric_schedule(2, 100.0);
  Circuit c1 = c;
  const UnrolledAnalysis one = unrolled_analysis(c1, sch, 1);
  EXPECT_DOUBLE_EQ(one.final_departure[1], 0.0);
  const UnrolledAnalysis two = unrolled_analysis(c1, sch, 2);
  // By cycle 1 the token exists: arrival = 0 + 2 + 30 + (50 - 0 - 100) = -18
  // -> still waits; bump the delay to check a positive case.
  EXPECT_DOUBLE_EQ(two.final_departure[1], 0.0);
  Circuit c2("t2", 2);
  c2.add_latch("A", 2, 1.0, 2.0);
  c2.add_latch("B", 1, 1.0, 2.0);
  c2.add_path("A", "B", 60.0);
  const UnrolledAnalysis late = unrolled_analysis(c2, sch, 2);
  EXPECT_NEAR(late.final_departure[1], 12.0, 1e-9);  // 2 + 60 - 50
}

TEST(Unrolled, MethodLabelCarriesWindow) {
  const Circuit c = circuits::example1(80.0);
  const BaselineResult r = atv_unrolled(c, ClockShape::symmetric(2), 7);
  EXPECT_NE(r.method.find("n_c=7"), std::string::npos);
}

}  // namespace
}  // namespace mintc::baselines
