// Full-stack flows: gate-level netlist -> delay extraction -> file
// round-trip -> optimization -> refinement -> analysis -> rendering.
#include <gtest/gtest.h>

#include "baselines/edge_triggered.h"
#include "netlist/extract.h"
#include "opt/mlp.h"
#include "parser/lcs.h"
#include "parser/lct.h"
#include "sta/analysis.h"
#include "viz/svg.h"
#include "viz/timing_diagram.h"

namespace mintc {
namespace {

// A small two-phase accumulator datapath at the gate level:
// master/slave latch pairs around an adder-ish gate cloud.
netlist::Netlist accumulator_netlist() {
  using netlist::GateType;
  netlist::Netlist n("accumulator", 2);
  const int in_d = n.add_net("in_d");
  const int in_q = n.add_net("in_q");
  const int acc_d = n.add_net("acc_d");
  const int acc_q = n.add_net("acc_q");
  const int out_d = n.add_net("out_d");
  const int out_q = n.add_net("out_q");
  const int x1 = n.add_net("x1");
  const int x2 = n.add_net("x2");
  const int x3 = n.add_net("x3");
  const int x4 = n.add_net("x4");

  n.add_latch("IN", 1, in_d, in_q, 0.3, 0.5);
  n.add_latch("ACC", 2, acc_d, acc_q, 0.3, 0.5);
  n.add_latch("OUT", 1, out_d, out_q, 0.3, 0.5);

  // "Adder": xor/and/or tree from IN.q and ACC.q (fed back through OUT).
  n.add_gate("g1", GateType::kXor, {in_q, x4}, x1);
  n.add_gate("g2", GateType::kAnd, {in_q, x4}, x2);
  n.add_gate("g3", GateType::kOr, {x1, x2}, x3);
  n.add_gate("g4", GateType::kBuf, {x3}, acc_d);
  n.add_gate("g5", GateType::kInv, {acc_q}, out_d);
  n.add_gate("g6", GateType::kBuf, {out_q}, x4);
  return n;
}

TEST(EndToEnd, NetlistToOptimalSchedule) {
  const auto circuit = netlist::extract_timing_model(accumulator_netlist());
  ASSERT_TRUE(circuit) << circuit.error().to_string();
  EXPECT_EQ(circuit->num_elements(), 3);
  EXPECT_TRUE(circuit->validate().empty());

  const auto r = opt::minimize_cycle_time(*circuit);
  ASSERT_TRUE(r) << r.error().to_string();
  EXPECT_GT(r->min_cycle, 0.0);

  // Verify, render, and compare against the edge-triggered baseline.
  EXPECT_TRUE(sta::check_schedule(*circuit, r->schedule).feasible);
  const auto et = baselines::edge_triggered_cpm(*circuit);
  EXPECT_LE(r->min_cycle, et.cycle + 1e-6);
  const std::string diagram = viz::ascii_timing_diagram(*circuit, r->schedule, r->departure);
  EXPECT_NE(diagram.find("ACC"), std::string::npos);
}

TEST(EndToEnd, FileRoundTripPreservesOptimum) {
  const auto circuit = netlist::extract_timing_model(accumulator_netlist());
  ASSERT_TRUE(circuit);
  const auto direct = opt::minimize_cycle_time(*circuit);
  ASSERT_TRUE(direct);

  const std::string dir = testing::TempDir();
  ASSERT_TRUE(parser::save_circuit(*circuit, dir + "/acc.lct"));
  const auto loaded = parser::load_circuit(dir + "/acc.lct");
  ASSERT_TRUE(loaded) << loaded.error().to_string();
  const auto reloaded = opt::minimize_cycle_time(*loaded);
  ASSERT_TRUE(reloaded);
  EXPECT_NEAR(direct->min_cycle, reloaded->min_cycle, 1e-6);

  // Schedule round trip through .lcs, then re-analysis.
  ASSERT_TRUE(parser::save_schedule(direct->schedule, dir + "/acc.lcs"));
  const auto sched = parser::load_schedule(dir + "/acc.lcs");
  ASSERT_TRUE(sched);
  EXPECT_TRUE(sta::check_schedule(*loaded, *sched).feasible);
}

TEST(EndToEnd, RefinedScheduleSurvivesSerialization) {
  const auto circuit = netlist::extract_timing_model(accumulator_netlist());
  ASSERT_TRUE(circuit);
  const auto base = opt::minimize_cycle_time(*circuit);
  ASSERT_TRUE(base);
  const auto refined = opt::refine_schedule(*circuit, base->min_cycle,
                                            opt::SecondaryObjective::kMinTotalWidth);
  ASSERT_TRUE(refined);
  const auto back = parser::parse_schedule(parser::write_schedule(refined->schedule));
  ASSERT_TRUE(back);
  EXPECT_TRUE(sta::check_schedule(*circuit, *back).feasible);
}

TEST(EndToEnd, SvgProducedForExtractedDesign) {
  const auto circuit = netlist::extract_timing_model(accumulator_netlist());
  ASSERT_TRUE(circuit);
  const auto r = opt::minimize_cycle_time(*circuit);
  ASSERT_TRUE(r);
  const std::string svg = viz::svg_timing_diagram(*circuit, r->schedule, r->departure);
  EXPECT_NE(svg.find(">IN<"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace mintc
