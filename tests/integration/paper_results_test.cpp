// One test per published quantitative claim — the executable summary of
// EXPERIMENTS.md. If any of these fail, the reproduction has drifted.
#include <gtest/gtest.h>

#include "baselines/binary_search.h"
#include "circuits/appendix_fig1.h"
#include "circuits/example1.h"
#include "circuits/example2.h"
#include "circuits/gaas.h"
#include "opt/constraints.h"
#include "opt/mlp.h"
#include "opt/parametric.h"

namespace mintc {
namespace {

double mlp_tc(const Circuit& c) {
  const auto r = opt::minimize_cycle_time(c);
  EXPECT_TRUE(r.has_value());
  return r ? r->min_cycle : -1.0;
}

TEST(PaperResults, Fig6a_Delta80_Tc110) { EXPECT_NEAR(mlp_tc(circuits::example1(80)), 110.0, 1e-6); }

TEST(PaperResults, Fig6b_Delta100_Tc120) { EXPECT_NEAR(mlp_tc(circuits::example1(100)), 120.0, 1e-6); }

TEST(PaperResults, Fig6c_Delta120_Tc140) { EXPECT_NEAR(mlp_tc(circuits::example1(120)), 140.0, 1e-6); }

TEST(PaperResults, Fig6a_TwoDistinctOptimalSchedules) {
  const Circuit c = circuits::example1(80.0);
  const auto a = opt::refine_schedule(c, 110.0, opt::SecondaryObjective::kMinTotalWidth);
  const auto b = opt::refine_schedule(c, 110.0, opt::SecondaryObjective::kMaxTotalWidth);
  ASSERT_TRUE(a && b);
  bool differs = false;
  for (int p = 1; p <= 2; ++p) {
    differs |= std::abs(a->schedule.T(p) - b->schedule.T(p)) > 1.0;
  }
  EXPECT_TRUE(differs);
}

TEST(PaperResults, Fig7_SegmentStructure) {
  const auto r = opt::sweep_path_delay(circuits::example1(0.0), circuits::example1_ld_path(),
                                       0.0, 160.0, 33);
  ASSERT_EQ(r.segments.size(), 3u);
  EXPECT_NEAR(r.segments[0].slope, 0.0, 1e-6);   // Tc independent of Δ41
  EXPECT_NEAR(r.segments[1].slope, 0.5, 1e-6);   // 1 ns per 2 ns increase
  EXPECT_NEAR(r.segments[2].slope, 1.0, 1e-6);   // direct proportion
  EXPECT_NEAR(r.segments[0].theta_end, 20.0, 1e-6);
  EXPECT_NEAR(r.segments[1].theta_end, 100.0, 1e-6);
}

TEST(PaperResults, Fig7_NripOptimalOnlyAtSixty) {
  const auto n60 = baselines::nrip_reconstruction(circuits::example1(60.0));
  EXPECT_NEAR(n60.cycle, 100.0, 1e-4);
  EXPECT_NEAR(mlp_tc(circuits::example1(60.0)), 100.0, 1e-6);
  const auto n80 = baselines::nrip_reconstruction(circuits::example1(80.0));
  EXPECT_GT(n80.cycle, 110.0 + 1.0);
}

TEST(PaperResults, Fig9_NripGap35Percent) {
  const Circuit c = circuits::example2();
  const auto nrip = baselines::nrip_reconstruction(c);
  EXPECT_NEAR(nrip.cycle / mlp_tc(c), 1.35, 0.01);
}

TEST(PaperResults, Gaas_91Constraints) {
  EXPECT_EQ(opt::generate_lp(circuits::gaas_datapath()).counts.rows(), 91);
}

TEST(PaperResults, Gaas_Tc4p4_TenPercentOverTarget) {
  const double tc = mlp_tc(circuits::gaas_datapath());
  EXPECT_NEAR(tc, 4.4, 1e-6);
  EXPECT_NEAR(tc / 4.0, 1.1, 1e-6);
}

TEST(PaperResults, Gaas_K13K31Zero) {
  const KMatrix k = circuits::gaas_datapath().k_matrix();
  EXPECT_FALSE(k.at(1, 3));
  EXPECT_FALSE(k.at(3, 1));
}

TEST(PaperResults, TableI_TransistorCounts) {
  const auto& t = circuits::gaas_transistor_table();
  int total = 0;
  for (const auto& row : t) {
    if (row.block != "Total") total += row.transistors;
  }
  EXPECT_EQ(total, 30148);
}

TEST(PaperResults, Appendix_NinePhasePairs) {
  EXPECT_EQ(circuits::appendix_fig1().k_matrix().num_pairs(), 9);
}

TEST(PaperResults, SectionIV_FixpointTerminatesFast) {
  // "usually terminated in two to three iterations (in some cases no
  // iterations were even necessary)".
  for (const double d41 : {0.0, 60.0, 80.0, 120.0}) {
    const auto r = opt::minimize_cycle_time(circuits::example1(d41));
    ASSERT_TRUE(r);
    EXPECT_LE(r->fixpoint_sweeps, 5) << d41;
  }
}

TEST(PaperResults, SectionIV_ConstraintCountLinearInLatches) {
  // Section IV claims #rows <= 4k + (F+1)l; the clock-side term undercounts
  // C3 when K has more than ~k pairs (the Appendix circuit itself has 9
  // pairs for k = 4), so we check the exact version of the same claim:
  // clock rows are O(k^2) and latch rows are (F+1)l -- linear in l.
  for (const Circuit& c :
       {circuits::example1(80.0), circuits::example2(), circuits::gaas_datapath(),
        circuits::appendix_fig1()}) {
    const opt::GeneratedLp g = opt::generate_lp(c);
    const int k = c.num_phases();
    EXPECT_LE(g.counts.rows(),
              3 * k - 1 + k * k + (c.max_fanin() + 1) * c.num_elements())
        << c.name();
    EXPECT_EQ(g.counts.l2r + g.counts.l1 + g.counts.ff_pin + g.counts.ff_setup,
              g.counts.rows() - g.counts.c1 - g.counts.c2 - g.counts.c3)
        << c.name();
  }
}

}  // namespace
}  // namespace mintc
