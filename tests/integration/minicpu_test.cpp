// End-to-end on the shipped gate-level showcase: examples/data/minicpu.v
// through the Verilog reader, delay extractor, optimizer, analysis engine,
// simulator and baselines. MINTC_DATA_DIR is provided by CMake.
#include <gtest/gtest.h>

#include "baselines/edge_triggered.h"
#include "netlist/extract.h"
#include "opt/bounds.h"
#include "opt/mlp.h"
#include "parser/verilog.h"
#include "sim/token_sim.h"
#include "sta/analysis.h"

namespace mintc {
namespace {

#ifndef MINTC_DATA_DIR
#error "MINTC_DATA_DIR must be defined by the build"
#endif

Expected<netlist::Netlist> load_minicpu() {
  return parser::load_verilog(std::string(MINTC_DATA_DIR) + "/minicpu.v");
}

TEST(MiniCpu, ParsesAndValidates) {
  const auto nl = load_minicpu();
  ASSERT_TRUE(nl) << nl.error().to_string();
  EXPECT_EQ(nl->name(), "minicpu");
  EXPECT_EQ(nl->storages().size(), 14u);
  EXPECT_GE(nl->gates().size(), 25u);
  EXPECT_TRUE(nl->validate().empty());
}

TEST(MiniCpu, ExtractsRippleCarryDepths) {
  const auto nl = load_minicpu();
  ASSERT_TRUE(nl);
  const auto c = netlist::extract_timing_model(*nl);
  ASSERT_TRUE(c) << c.error().to_string();
  EXPECT_EQ(c->num_elements(), 14);
  // The carry chain makes paths into higher ALU bits strictly longer.
  const auto max_into = [&](const std::string& name) {
    double best = 0.0;
    for (const CombPath& p : c->paths()) {
      if (c->element(p.to).name == name) best = std::max(best, p.delay);
    }
    return best;
  };
  EXPECT_GT(max_into("ALUo3"), max_into("ALUo1") + 0.2);
}

TEST(MiniCpu, OptimizesVerifiesAndSimulates) {
  const auto nl = load_minicpu();
  ASSERT_TRUE(nl);
  const auto c = netlist::extract_timing_model(*nl);
  ASSERT_TRUE(c);
  const auto r = opt::minimize_cycle_time(*c);
  ASSERT_TRUE(r) << r.error().to_string();
  EXPECT_GT(r->min_cycle, 0.0);
  EXPECT_TRUE(opt::satisfies_p1(*c, r->schedule, r->departure, 1e-6));
  EXPECT_TRUE(sta::check_schedule(*c, r->schedule).feasible);
  EXPECT_GE(r->min_cycle, opt::cycle_time_lower_bound(*c) - 1e-6);
  EXPECT_LE(r->min_cycle, baselines::edge_triggered_cpm(*c).cycle + 1e-6);

  const sim::SimResult sim = sim::simulate_tokens(*c, r->schedule.scaled(1.01));
  ASSERT_TRUE(sim.converged);
  EXPECT_TRUE(sim.setup_ok);
}

}  // namespace
}  // namespace mintc
