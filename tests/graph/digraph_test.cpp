#include "graph/digraph.h"

#include <gtest/gtest.h>

namespace mintc::graph {
namespace {

TEST(Digraph, ConstructionAndEdges) {
  Digraph g(3);
  EXPECT_EQ(g.num_nodes(), 3);
  const int e0 = g.add_edge(0, 1, 2.5, 1.0, 7);
  const int e1 = g.add_edge(1, 2, -1.0);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.edge(e0).weight, 2.5);
  EXPECT_EQ(g.edge(e0).transit, 1.0);
  EXPECT_EQ(g.edge(e0).tag, 7);
  EXPECT_EQ(g.edge(e1).to, 2);
}

TEST(Digraph, AddNodeGrows) {
  Digraph g;
  EXPECT_EQ(g.num_nodes(), 0);
  const int a = g.add_node();
  const int b = g.add_node();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  g.add_edge(a, b);
  EXPECT_EQ(g.out_edges(a).size(), 1u);
  EXPECT_EQ(g.in_edges(b).size(), 1u);
}

TEST(Digraph, ParallelEdgesAndSelfLoops) {
  Digraph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.0);
  g.add_edge(0, 0, 3.0);
  EXPECT_EQ(g.out_edges(0).size(), 3u);
  EXPECT_EQ(g.in_edges(0).size(), 1u);
  EXPECT_EQ(g.in_edges(1).size(), 2u);
}

TEST(Digraph, AdjacencyListsConsistent) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  int out_total = 0;
  int in_total = 0;
  for (int v = 0; v < g.num_nodes(); ++v) {
    out_total += static_cast<int>(g.out_edges(v).size());
    in_total += static_cast<int>(g.in_edges(v).size());
  }
  EXPECT_EQ(out_total, g.num_edges());
  EXPECT_EQ(in_total, g.num_edges());
}

}  // namespace
}  // namespace mintc::graph
