#include "graph/topo.h"

#include <gtest/gtest.h>

#include <limits>

namespace mintc::graph {
namespace {

TEST(Topo, OrdersDag) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(3, 2);
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  std::vector<int> pos(4);
  for (size_t i = 0; i < order->size(); ++i) pos[static_cast<size_t>((*order)[i])] = static_cast<int>(i);
  for (const Edge& e : g.edges()) EXPECT_LT(pos[static_cast<size_t>(e.from)], pos[static_cast<size_t>(e.to)]);
}

TEST(Topo, RejectsCycle) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_FALSE(topological_order(g).has_value());
}

TEST(LongestPath, SimpleDiamond) {
  //      1
  //  0 <   > 3 ; top path weight 5+1, bottom 2+9.
  //      2
  Digraph g(4);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(2, 3, 9.0);
  const auto lp = dag_longest_paths(g, {0}, {0.0});
  ASSERT_TRUE(lp.has_value());
  EXPECT_DOUBLE_EQ(lp->dist[3], 11.0);
  const std::vector<int> path = extract_path(g, *lp, 3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0);
  EXPECT_EQ(path[1], 2);
  EXPECT_EQ(path[2], 3);
}

TEST(LongestPath, UnreachableIsMinusInf) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0);
  const auto lp = dag_longest_paths(g, {0}, {0.0});
  ASSERT_TRUE(lp.has_value());
  EXPECT_EQ(lp->dist[2], -std::numeric_limits<double>::infinity());
}

TEST(LongestPath, MultipleSourcesWithOffsets) {
  Digraph g(3);
  g.add_edge(0, 2, 1.0);
  g.add_edge(1, 2, 1.0);
  const auto lp = dag_longest_paths(g, {0, 1}, {0.0, 5.0});
  ASSERT_TRUE(lp.has_value());
  EXPECT_DOUBLE_EQ(lp->dist[2], 6.0);  // through source 1 with offset 5
}

TEST(LongestPath, CyclicGraphRejected) {
  Digraph g(2);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 0, 1.0);
  EXPECT_FALSE(dag_longest_paths(g, {0}, {0.0}).has_value());
}

}  // namespace
}  // namespace mintc::graph
