#include "graph/scc.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace mintc::graph {
namespace {

TEST(Scc, SingleCycle) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.num_components, 1);
  EXPECT_TRUE(r.nontrivial[0]);
  EXPECT_TRUE(has_cycle(g));
}

TEST(Scc, PureDag) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.num_components, 4);
  for (int c = 0; c < r.num_components; ++c) EXPECT_FALSE(r.nontrivial[static_cast<size_t>(c)]);
  EXPECT_FALSE(has_cycle(g));
}

TEST(Scc, SelfLoopIsNontrivial) {
  Digraph g(2);
  g.add_edge(0, 0);
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.num_components, 2);
  EXPECT_TRUE(r.nontrivial[static_cast<size_t>(r.component[0])]);
  EXPECT_FALSE(r.nontrivial[static_cast<size_t>(r.component[1])]);
  EXPECT_TRUE(has_cycle(g));
}

TEST(Scc, TwoComponentsBridged) {
  // {0,1} cycle -> {2,3} cycle; bridge 1->2.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.num_components, 2);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[2], r.component[3]);
  EXPECT_NE(r.component[0], r.component[2]);
  // Tarjan emits components in reverse topological order: the sink component
  // {2,3} gets the smaller index.
  EXPECT_LT(r.component[2], r.component[0]);
}

TEST(Scc, MembersListsArePartition) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  const SccResult r = strongly_connected_components(g);
  size_t total = 0;
  for (const auto& m : r.members) total += m.size();
  EXPECT_EQ(total, 5u);
  for (int c = 0; c < r.num_components; ++c) {
    for (const int v : r.members[static_cast<size_t>(c)]) {
      EXPECT_EQ(r.component[static_cast<size_t>(v)], c);
    }
  }
}

TEST(Scc, DeepChainDoesNotOverflow) {
  // The iterative Tarjan must survive a recursion-hostile chain.
  const int n = 200000;
  Digraph g(n);
  for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.num_components, n);
}

}  // namespace
}  // namespace mintc::graph
