#include "graph/cycle_ratio.h"

#include <gtest/gtest.h>

#include <random>

namespace mintc::graph {
namespace {

TEST(CycleRatio, SingleLoop) {
  // One cycle: weight 10, transit 2 -> ratio 5.
  Digraph g(2);
  g.add_edge(0, 1, 4.0, 1.0);
  g.add_edge(1, 0, 6.0, 1.0);
  const auto lawler = max_cycle_ratio_lawler(g);
  const auto howard = max_cycle_ratio_howard(g);
  ASSERT_TRUE(lawler && howard);
  EXPECT_NEAR(lawler->ratio, 5.0, 1e-6);
  EXPECT_NEAR(howard->ratio, 5.0, 1e-6);
  EXPECT_EQ(howard->cycle_edges.size(), 2u);
}

TEST(CycleRatio, PicksMaximumOfTwoLoops) {
  // Loop A: 10/2 = 5. Loop B: 9/1 = 9.
  Digraph g(4);
  g.add_edge(0, 1, 5.0, 1.0);
  g.add_edge(1, 0, 5.0, 1.0);
  g.add_edge(2, 3, 4.0, 0.0);
  g.add_edge(3, 2, 5.0, 1.0);
  const auto lawler = max_cycle_ratio_lawler(g);
  const auto howard = max_cycle_ratio_howard(g);
  ASSERT_TRUE(lawler && howard);
  EXPECT_NEAR(lawler->ratio, 9.0, 1e-6);
  EXPECT_NEAR(howard->ratio, 9.0, 1e-6);
}

TEST(CycleRatio, SelfLoop) {
  Digraph g(1);
  g.add_edge(0, 0, 7.0, 2.0);
  const auto howard = max_cycle_ratio_howard(g);
  ASSERT_TRUE(howard);
  EXPECT_NEAR(howard->ratio, 3.5, 1e-6);
  ASSERT_EQ(howard->cycle_edges.size(), 1u);
}

TEST(CycleRatio, AcyclicReturnsNullopt) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0, 1.0);
  g.add_edge(1, 2, 1.0, 1.0);
  EXPECT_FALSE(max_cycle_ratio_lawler(g).has_value());
  EXPECT_FALSE(max_cycle_ratio_howard(g).has_value());
}

TEST(CycleRatio, CycleMustBeReachableThroughChoices) {
  // A tail leading into a cycle: ratio from the cycle only.
  Digraph g(4);
  g.add_edge(0, 1, 100.0, 1.0);  // tail edge, not on any cycle
  g.add_edge(1, 2, 2.0, 1.0);
  g.add_edge(2, 3, 2.0, 1.0);
  g.add_edge(3, 1, 2.0, 1.0);
  const auto lawler = max_cycle_ratio_lawler(g);
  const auto howard = max_cycle_ratio_howard(g);
  ASSERT_TRUE(lawler && howard);
  EXPECT_NEAR(lawler->ratio, 2.0, 1e-6);
  EXPECT_NEAR(howard->ratio, 2.0, 1e-6);
}

TEST(CycleRatio, HowardCycleEdgesFormACycleAchievingRatio) {
  Digraph g(5);
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> w(1.0, 10.0);
  // Ring plus chords.
  for (int v = 0; v < 5; ++v) g.add_edge(v, (v + 1) % 5, w(rng), 1.0);
  g.add_edge(0, 2, w(rng), 1.0);
  g.add_edge(2, 4, w(rng), 1.0);
  const auto howard = max_cycle_ratio_howard(g);
  ASSERT_TRUE(howard);
  double wsum = 0.0;
  double tsum = 0.0;
  for (const int e : howard->cycle_edges) {
    wsum += g.edge(e).weight;
    tsum += g.edge(e).transit;
    // consecutive edges chain head-to-tail
  }
  ASSERT_GT(tsum, 0.0);
  EXPECT_NEAR(wsum / tsum, howard->ratio, 1e-6);
}

TEST(CycleRatio, LawlerHowardAgreeOnRandomGraphs) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> w(0.5, 20.0);
  std::uniform_int_distribution<int> node(0, 7);
  for (int trial = 0; trial < 50; ++trial) {
    Digraph g(8);
    // Guarantee one cycle, then add random edges with transit 1 (latch-graph
    // style: every edge crosses 0 or 1 boundaries, cycles always cross).
    for (int v = 0; v < 8; ++v) g.add_edge(v, (v + 1) % 8, w(rng), 1.0);
    for (int e = 0; e < 10; ++e) g.add_edge(node(rng), node(rng), w(rng), 1.0);
    const auto lawler = max_cycle_ratio_lawler(g);
    const auto howard = max_cycle_ratio_howard(g);
    ASSERT_TRUE(lawler && howard) << "trial " << trial;
    EXPECT_NEAR(lawler->ratio, howard->ratio, 1e-5) << "trial " << trial;
  }
}

TEST(CycleRatio, ZeroTransitPositiveCycleIsUnbounded) {
  Digraph g(2);
  g.add_edge(0, 1, 1.0, 0.0);
  g.add_edge(1, 0, 1.0, 0.0);
  const auto lawler = max_cycle_ratio_lawler(g);
  ASSERT_TRUE(lawler);
  EXPECT_TRUE(std::isinf(lawler->ratio));
}

}  // namespace
}  // namespace mintc::graph
