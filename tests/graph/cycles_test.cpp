#include "graph/cycles.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "graph/cycle_ratio.h"

namespace mintc::graph {
namespace {

TEST(Cycles, SingleLoop) {
  Digraph g(3);
  g.add_edge(0, 1, 1.0, 1.0);
  g.add_edge(1, 2, 2.0, 0.0);
  g.add_edge(2, 0, 3.0, 1.0);
  std::vector<SimpleCycle> cycles;
  EXPECT_TRUE(enumerate_simple_cycles(g, cycles));
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].edges.size(), 3u);
  EXPECT_DOUBLE_EQ(cycles[0].weight_sum, 6.0);
  EXPECT_DOUBLE_EQ(cycles[0].transit_sum, 2.0);
  EXPECT_DOUBLE_EQ(cycles[0].ratio(), 3.0);
}

TEST(Cycles, SelfLoopAndParallelEdges) {
  Digraph g(2);
  g.add_edge(0, 0, 5.0, 1.0);  // self loop
  g.add_edge(0, 1, 1.0, 1.0);
  g.add_edge(1, 0, 1.0, 1.0);
  g.add_edge(1, 0, 2.0, 1.0);  // parallel: two distinct 2-cycles
  std::vector<SimpleCycle> cycles;
  EXPECT_TRUE(enumerate_simple_cycles(g, cycles));
  EXPECT_EQ(cycles.size(), 3u);
}

TEST(Cycles, AcyclicGraphHasNone) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  std::vector<SimpleCycle> cycles;
  EXPECT_TRUE(enumerate_simple_cycles(g, cycles));
  EXPECT_TRUE(cycles.empty());
}

TEST(Cycles, CompleteGraphCountIsKnown) {
  // K4 (directed, both directions): simple cycles = 4C2 * 1 (2-cycles: 6)
  // + 4C3 * 2 (3-cycles: 8) + 3! (4-cycles: 6) = 20.
  Digraph g(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) g.add_edge(i, j);
    }
  }
  std::vector<SimpleCycle> cycles;
  EXPECT_TRUE(enumerate_simple_cycles(g, cycles));
  EXPECT_EQ(cycles.size(), 20u);
}

TEST(Cycles, TruncationReported) {
  Digraph g(5);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      if (i != j) g.add_edge(i, j);
    }
  }
  std::vector<SimpleCycle> cycles;
  EXPECT_FALSE(enumerate_simple_cycles(g, cycles, 10));
  EXPECT_EQ(cycles.size(), 10u);
}

TEST(Cycles, EachCycleReportedOnce) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  g.add_edge(1, 0);
  std::vector<SimpleCycle> cycles;
  EXPECT_TRUE(enumerate_simple_cycles(g, cycles));
  EXPECT_EQ(cycles.size(), 2u);  // the 4-ring and the 0<->1 2-cycle
}

TEST(Cycles, BruteForceCrossChecksCycleRatio) {
  // The maximum ratio over enumerated cycles must equal Lawler and Howard.
  std::mt19937_64 rng(2024);
  std::uniform_real_distribution<double> w(0.5, 15.0);
  std::uniform_int_distribution<int> node(0, 6);
  for (int trial = 0; trial < 60; ++trial) {
    Digraph g(7);
    for (int v = 0; v < 7; ++v) g.add_edge(v, (v + 1) % 7, w(rng), 1.0);
    for (int e = 0; e < 8; ++e) g.add_edge(node(rng), node(rng), w(rng), 1.0);
    std::vector<SimpleCycle> cycles;
    ASSERT_TRUE(enumerate_simple_cycles(g, cycles, 100000)) << "trial " << trial;
    ASSERT_FALSE(cycles.empty());
    double best = -1e18;
    for (const SimpleCycle& c : cycles) best = std::max(best, c.ratio());
    const auto lawler = max_cycle_ratio_lawler(g);
    const auto howard = max_cycle_ratio_howard(g);
    ASSERT_TRUE(lawler && howard) << "trial " << trial;
    EXPECT_NEAR(lawler->ratio, best, 1e-5) << "trial " << trial;
    EXPECT_NEAR(howard->ratio, best, 1e-5) << "trial " << trial;
  }
}

}  // namespace
}  // namespace mintc::graph
