#include "parser/verilog.h"

#include <gtest/gtest.h>

#include <fstream>

#include "netlist/extract.h"
#include "opt/mlp.h"

namespace mintc::parser {
namespace {

constexpr const char* kAccumulator = R"(
// two-phase accumulator
module accumulator (clk1, clk2, din);
  wire in_q, acc_d, acc_q, out_d, out_q, x1, x2, x3, x4;

  latch #(.phase(1), .setup(0.3), .dq(0.5)) IN  (.d(din),   .q(in_q));
  latch #(.phase(2), .setup(0.3), .dq(0.5)) ACC (.d(acc_d), .q(acc_q));
  latch #(.phase(1), .setup(0.3), .dq(0.5)) OUT (.d(out_d), .q(out_q));

  xor g1 (x1, in_q, x4);
  and g2 (x2, in_q, x4);
  or  g3 (x3, x1, x2);
  buf g4 (acc_d, x3);
  not g5 (out_d, acc_q);
  buf g6 (x4, out_q);
endmodule
)";

TEST(Verilog, ParsesAccumulator) {
  const auto nl = parse_verilog(kAccumulator);
  ASSERT_TRUE(nl) << nl.error().to_string();
  EXPECT_EQ(nl->name(), "accumulator");
  EXPECT_EQ(nl->num_phases(), 2);
  EXPECT_EQ(nl->storages().size(), 3u);
  EXPECT_EQ(nl->gates().size(), 6u);
  EXPECT_TRUE(nl->validate().empty());
  EXPECT_EQ(nl->storages()[0].name, "IN");
  EXPECT_DOUBLE_EQ(nl->storages()[0].setup, 0.3);
}

TEST(Verilog, FlowsIntoTimingModel) {
  const auto nl = parse_verilog(kAccumulator);
  ASSERT_TRUE(nl);
  const auto circuit = netlist::extract_timing_model(*nl);
  ASSERT_TRUE(circuit) << circuit.error().to_string();
  EXPECT_EQ(circuit->num_elements(), 3);
  const auto r = opt::minimize_cycle_time(*circuit);
  ASSERT_TRUE(r) << r.error().to_string();
  EXPECT_GT(r->min_cycle, 0.0);
}

TEST(Verilog, DffAndExtraParams) {
  const auto nl = parse_verilog(
      "module m (a);\n"
      "  dff #(.phase(2), .setup(0.2), .cq(0.4), .hold(0.1)) F (.d(a), .q(b));\n"
      "  latch #(.phase(1), .setup(0.1), .dq(0.3), .dqmin(0.2)) L (.q(a), .d(b));\n"
      "endmodule\n");
  ASSERT_TRUE(nl) << nl.error().to_string();
  EXPECT_EQ(nl->storages()[0].kind, ElementKind::kFlipFlop);
  EXPECT_DOUBLE_EQ(nl->storages()[0].hold, 0.1);
  EXPECT_DOUBLE_EQ(nl->storages()[1].dq_min, 0.2);
  // Pin order independent: .q before .d accepted.
  EXPECT_EQ(nl->net_name(nl->storages()[1].q_net), "a");
}

TEST(Verilog, BlockCommentsAndImplicitNets) {
  const auto nl = parse_verilog(
      "module m (x); /* block\n comment */\n"
      "  latch #(.phase(1), .setup(1), .dq(2)) L (.d(n1), .q(n2));\n"
      "  buf b1 (n1, n2); // feedback\n"
      "endmodule\n");
  ASSERT_TRUE(nl) << nl.error().to_string();
  EXPECT_EQ(nl->num_nets(), 2);
}

TEST(Verilog, VariadicPrimitives) {
  const auto nl = parse_verilog(
      "module m (x);\n"
      "  latch #(.phase(1), .setup(1), .dq(2)) L (.d(o), .q(q));\n"
      "  nand g (o, q, a, b, c);\n"
      "endmodule\n");
  ASSERT_TRUE(nl) << nl.error().to_string();
  EXPECT_EQ(nl->gates()[0].inputs.size(), 4u);
}

TEST(Verilog, ErrorsCarryLines) {
  const auto nl = parse_verilog("module m (x);\n  gadget g (a, b);\nendmodule\n");
  ASSERT_FALSE(nl);
  EXPECT_NE(nl.error().message.find("line 2"), std::string::npos);
  EXPECT_NE(nl.error().message.find("gadget"), std::string::npos);
}

TEST(Verilog, RejectsMalformedInputs) {
  EXPECT_FALSE(parse_verilog(""));                                     // no module
  EXPECT_FALSE(parse_verilog("module m (x);\n"));                      // no endmodule
  EXPECT_FALSE(parse_verilog("module m (x); /* unterminated"));        // comment
  EXPECT_FALSE(parse_verilog(
      "module m (x);\n latch #(.phase(1)) L (.d(a));\nendmodule\n"));  // missing .q
  EXPECT_FALSE(parse_verilog(
      "module m (x);\n latch #(.bogus(1), .setup(1), .dq(2)) L (.d(a), .q(b));\n"
      "endmodule\n"));                                                 // unknown param
  EXPECT_FALSE(parse_verilog(
      "module m (x);\n buf g (only_output);\nendmodule\n"));           // arity
}

TEST(Verilog, SkewParameterParsedAndExtracted) {
  const auto nl = parse_verilog(
      "module m (clk1);\n"
      "  wire d1, q1, d2, q2;\n"
      "  latch #(.phase(1), .setup(0.3), .dq(0.5), .skew(0.2)) A (.d(d1), .q(q1));\n"
      "  dff #(.phase(1), .setup(0.3), .cq(0.5), .skew(0.1)) B (.d(d2), .q(q2));\n"
      "  buf g1 (d2, q1);\n"
      "  buf g2 (d1, q2);\n"
      "endmodule\n");
  ASSERT_TRUE(nl) << nl.error().to_string();
  EXPECT_DOUBLE_EQ(nl->storages()[0].skew, 0.2);
  EXPECT_DOUBLE_EQ(nl->storages()[1].skew, 0.1);
  const auto c = netlist::extract_timing_model(*nl);
  ASSERT_TRUE(c) << c.error().to_string();
  EXPECT_DOUBLE_EQ(c->element(0).skew, 0.2);
  EXPECT_DOUBLE_EQ(c->element(1).skew, 0.1);
}

TEST(Verilog, NegativeSkewRejectedWithLineNumber) {
  const auto nl = parse_verilog(
      "module m (clk1);\n"
      "  wire d1, q1;\n"
      "  latch #(.phase(1), .setup(0.3), .dq(0.5), .skew(-0.2)) A (.d(d1), .q(q1));\n"
      "endmodule\n");
  ASSERT_FALSE(nl);
  EXPECT_NE(nl.error().message.find("skew"), std::string::npos);
  EXPECT_NE(nl.error().message.find("3"), std::string::npos);
}

TEST(Verilog, LoadFromFile) {
  const std::string path = testing::TempDir() + "/acc.v";
  {
    std::ofstream out(path);
    out << kAccumulator;
  }
  const auto nl = load_verilog(path);
  ASSERT_TRUE(nl) << nl.error().to_string();
  EXPECT_EQ(nl->storages().size(), 3u);
  EXPECT_FALSE(load_verilog("/nonexistent/x.v"));
}

}  // namespace
}  // namespace mintc::parser
