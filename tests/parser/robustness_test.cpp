// Parser robustness: hostile and degenerate inputs must produce errors (or
// valid results), never crashes, across all three readers.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "parser/lcs.h"
#include "parser/lct.h"
#include "parser/verilog.h"

namespace mintc::parser {
namespace {

TEST(Robustness, LctGarbageNeverCrashes) {
  const char* cases[] = {
      "\n\n\n",
      "circuit",
      "circuit a b c",
      "phases -3",
      "phases 999999",
      "latch",
      "phases 1\nlatch X phase=",
      "phases 1\nlatch X phase=1 setup=1 dq=2\npath X X delay=-5",
      "phases 1\nlatch X phase=1 setup=1 dq=2 setup=2",
      "circuit c\nphases 2\nlatch \xc3\xa9 phase=1 setup=1 dq=2",  // UTF-8 name
      "path",
      "# only a comment",
      "phases 1\n# trailing comment with no newline",
  };
  for (const char* text : cases) {
    const auto c = parse_circuit(text);
    if (c) {
      // Accepted inputs must at least be structurally sane.
      EXPECT_GE(c->num_phases(), 1) << text;
    }
  }
}

TEST(Robustness, LctRandomTokenSoup) {
  std::mt19937_64 rng(8);
  const char* words[] = {"circuit", "phases",  "latch", "flipflop", "path", "delay=1",
                         "phase=1", "setup=1", "dq=2",  "L1",       "2",    "#x",
                         "=",       "min=",    "\n"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    std::uniform_int_distribution<size_t> pick(0, std::size(words) - 1);
    const int len = 3 + trial % 20;
    for (int i = 0; i < len; ++i) {
      text += words[pick(rng)];
      text += ' ';
    }
    const auto c = parse_circuit(text);  // must not crash or hang
    (void)c;
  }
}

TEST(Robustness, LcsGarbageNeverCrashes) {
  const char* cases[] = {
      "cycle", "cycle x", "phase 1", "cycle 10\nphase 0 start=0 width=1",
      "cycle 10\nphase 1 start=a width=b", "cycle 1e309\nphase 1 start=0 width=1",
  };
  for (const char* text : cases) {
    const auto s = parse_schedule(text);
    (void)s;
  }
}

TEST(Robustness, VerilogGarbageNeverCrashes) {
  const char* cases[] = {
      "module",
      "module ;",
      "module m (",
      "module m (x); latch",
      "module m (x); latch #(",
      "module m (x); latch #(.phase(1) L (.d(a), .q(b)); endmodule",
      "module m (x); and g (a); endmodule",
      "module m (x); /*",
      "module m (x); latch #(.phase(1.9), .setup(1), .dq(2)) L (.d(a), .q(b)); endmodule",
      "endmodule",
  };
  for (const char* text : cases) {
    const auto nl = parse_verilog(text);
    (void)nl;
  }
}

TEST(Robustness, LctRejectsNonFiniteValues) {
  // strtod accepts "nan"/"inf" spellings; the parser must not let them
  // through into a Circuit (a single NaN poisons every fixpoint).
  const char* cases[] = {
      "circuit c\nphases 1\nlatch X phase=1 setup=nan dq=2\n",
      "circuit c\nphases 1\nlatch X phase=1 setup=1 dq=inf\n",
      "circuit c\nphases 1\nlatch X phase=1 setup=1 dq=2 hold=NaN\n",
      "circuit c\nphases 1\nlatch X phase=1 setup=1 dq=2 dqmin=-inf\n",
      "circuit c\nphases 1\nflipflop X phase=1 setup=1 cq=infinity\n",
      "circuit c\nphases 1\nlatch X phase=1 setup=1 dq=2\n"
      "latch Y phase=1 setup=1 dq=2\npath X Y delay=nan\n",
      "circuit c\nphases 1\nlatch X phase=1 setup=1 dq=2\n"
      "latch Y phase=1 setup=1 dq=2\npath X Y delay=5 min=nan\n",
  };
  for (const char* text : cases) {
    EXPECT_FALSE(parse_circuit(text)) << text;
  }
}

TEST(Robustness, LcsRejectsNonFiniteValues) {
  const char* cases[] = {
      "cycle nan\nphase 1 start=0 width=1\n",
      "cycle inf\nphase 1 start=0 width=1\n",
      "cycle 10\nphase 1 start=nan width=1\n",
      "cycle 10\nphase 1 start=0 width=inf\n",
  };
  for (const char* text : cases) {
    EXPECT_FALSE(parse_schedule(text)) << text;
  }
}

TEST(Robustness, LargeGeneratedFileParses) {
  // A 4000-line circuit file must parse quickly and correctly.
  std::string text = "circuit big\nphases 2\n";
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    text += "latch L" + std::to_string(i) + " phase=" + std::to_string(i % 2 + 1) +
            " setup=1 dq=2\n";
  }
  for (int i = 0; i + 1 < n; ++i) {
    text += "path L" + std::to_string(i) + " L" + std::to_string(i + 1) + " delay=5\n";
  }
  const auto c = parse_circuit(text);
  ASSERT_TRUE(c) << c.error().to_string();
  EXPECT_EQ(c->num_elements(), n);
  EXPECT_EQ(c->num_paths(), n - 1);
}

}  // namespace
}  // namespace mintc::parser
