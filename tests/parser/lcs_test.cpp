#include "parser/lcs.h"

#include <gtest/gtest.h>

namespace mintc::parser {
namespace {

TEST(LcsParser, ParsesSchedule) {
  const auto s = parse_schedule(
      "# optimal for example 1\ncycle 110\nphase 1 start=0 width=80\nphase 2 start=80 "
      "width=30\n");
  ASSERT_TRUE(s) << s.error().to_string();
  EXPECT_DOUBLE_EQ(s->cycle, 110.0);
  EXPECT_EQ(s->num_phases(), 2);
  EXPECT_DOUBLE_EQ(s->s(2), 80.0);
  EXPECT_DOUBLE_EQ(s->T(2), 30.0);
}

TEST(LcsParser, PhasesMustBeInOrder) {
  const auto s = parse_schedule("cycle 10\nphase 2 start=0 width=1\n");
  ASSERT_FALSE(s);
  EXPECT_NE(s.error().message.find("in order"), std::string::npos);
}

TEST(LcsParser, MissingCycleRejected) {
  EXPECT_FALSE(parse_schedule("phase 1 start=0 width=1\n"));
}

TEST(LcsParser, NoPhasesRejected) {
  EXPECT_FALSE(parse_schedule("cycle 10\n"));
}

TEST(LcsParser, MissingAttrRejected) {
  EXPECT_FALSE(parse_schedule("cycle 10\nphase 1 start=0\n"));
  EXPECT_FALSE(parse_schedule("cycle 10\nphase 1 width=1\n"));
}

TEST(LcsParser, UnknownKeywordRejected) {
  EXPECT_FALSE(parse_schedule("cycle 10\nbogus\n"));
}

TEST(LcsWriter, RoundTrip) {
  ClockSchedule sch(4.4, {0.0, 0.9, 4.4}, {0.8, 0.9, 0.15});
  const auto back = parse_schedule(write_schedule(sch));
  ASSERT_TRUE(back) << back.error().to_string();
  EXPECT_NEAR(back->cycle, sch.cycle, 1e-6);
  for (int p = 1; p <= 3; ++p) {
    EXPECT_NEAR(back->s(p), sch.s(p), 1e-6);
    EXPECT_NEAR(back->T(p), sch.T(p), 1e-6);
  }
}

TEST(LcsFiles, SaveAndLoad) {
  const std::string path = testing::TempDir() + "/sched.lcs";
  ClockSchedule sch(100.0, {0.0, 50.0}, {50.0, 50.0});
  ASSERT_TRUE(save_schedule(sch, path));
  const auto back = load_schedule(path);
  ASSERT_TRUE(back);
  EXPECT_DOUBLE_EQ(back->cycle, 100.0);
}

TEST(LcsFiles, MissingFileIsIoError) {
  const auto s = load_schedule("/nonexistent/nope.lcs");
  ASSERT_FALSE(s);
  EXPECT_EQ(s.error().kind, ErrorKind::kIo);
}

}  // namespace
}  // namespace mintc::parser
