#include "parser/lct.h"

#include <gtest/gtest.h>

#include "circuits/example1.h"
#include "circuits/gaas.h"
#include "opt/mlp.h"

namespace mintc::parser {
namespace {

constexpr const char* kExample1 = R"(
# Example 1 from the paper (Fig. 5)
circuit example1
phases 2
latch L1 phase=1 setup=10 dq=10
latch L2 phase=2 setup=10 dq=10
latch L3 phase=1 setup=10 dq=10
latch L4 phase=2 setup=10 dq=10
path L1 L2 delay=20 label=La
path L2 L3 delay=20 label=Lb
path L3 L4 delay=60 label=Lc
path L4 L1 delay=80 label=Ld
)";

TEST(LctParser, ParsesExample1) {
  const auto c = parse_circuit(kExample1);
  ASSERT_TRUE(c) << c.error().to_string();
  EXPECT_EQ(c->name(), "example1");
  EXPECT_EQ(c->num_phases(), 2);
  EXPECT_EQ(c->num_elements(), 4);
  EXPECT_EQ(c->num_paths(), 4);
  EXPECT_EQ(c->path(3).label, "Ld");
  EXPECT_DOUBLE_EQ(c->path(2).delay, 60.0);
  // And it optimizes to the published value.
  const auto r = opt::minimize_cycle_time(*c);
  ASSERT_TRUE(r);
  EXPECT_NEAR(r->min_cycle, 110.0, 1e-6);
}

TEST(LctParser, FlipFlopAndOptionalAttrs) {
  const auto c = parse_circuit(
      "circuit t\nphases 2\n"
      "flipflop F phase=1 setup=0.2 cq=0.3 hold=0.1\n"
      "latch L phase=2 setup=1 dq=2 dqmin=1.5 hold=0.4\n"
      "path F L delay=5 min=2 label=blk\n");
  ASSERT_TRUE(c) << c.error().to_string();
  EXPECT_EQ(c->element(0).kind, ElementKind::kFlipFlop);
  EXPECT_DOUBLE_EQ(c->element(0).dq, 0.3);
  EXPECT_DOUBLE_EQ(c->element(0).hold, 0.1);
  EXPECT_DOUBLE_EQ(c->element(1).dq_min, 1.5);
  EXPECT_DOUBLE_EQ(c->path(0).min_delay, 2.0);
}

TEST(LctParser, ErrorsCarryLineNumbers) {
  const auto c = parse_circuit("circuit t\nphases 2\nlatch L phase=9 setup=1 dq=2\n");
  ASSERT_FALSE(c);
  EXPECT_NE(c.error().message.find("line 3"), std::string::npos);
}

TEST(LctParser, UnknownKeywordRejected) {
  const auto c = parse_circuit("circuit t\nphases 1\nwidget W\n");
  ASSERT_FALSE(c);
  EXPECT_NE(c.error().message.find("unknown keyword"), std::string::npos);
}

TEST(LctParser, UnknownAttributeRejected) {
  const auto c = parse_circuit("circuit t\nphases 1\nlatch L phase=1 setup=1 dq=2 zap=3\n");
  ASSERT_FALSE(c);
  EXPECT_NE(c.error().message.find("unknown attribute"), std::string::npos);
}

TEST(LctParser, PathBeforeElementsRejected) {
  const auto c = parse_circuit("circuit t\nphases 1\npath A B delay=1\n");
  EXPECT_FALSE(c);
}

TEST(LctParser, UnknownEndpointRejected) {
  const auto c =
      parse_circuit("circuit t\nphases 1\nlatch L phase=1 setup=1 dq=2\npath L M delay=1\n");
  ASSERT_FALSE(c);
  EXPECT_NE(c.error().message.find("unknown element 'M'"), std::string::npos);
}

TEST(LctParser, DuplicateElementRejected) {
  const auto c = parse_circuit(
      "circuit t\nphases 1\nlatch L phase=1 setup=1 dq=2\nlatch L phase=1 setup=1 dq=2\n");
  ASSERT_FALSE(c);
  EXPECT_NE(c.error().message.find("duplicate"), std::string::npos);
}

TEST(LctParser, MissingPhasesRejected) {
  EXPECT_FALSE(parse_circuit("circuit t\n"));
  EXPECT_FALSE(parse_circuit(""));
}

TEST(LctParser, PathRequiresDelay) {
  const auto c = parse_circuit(
      "circuit t\nphases 1\nlatch A phase=1 setup=1 dq=2\nlatch B phase=1 setup=1 dq=2\n"
      "path A B label=x\n");
  ASSERT_FALSE(c);
  EXPECT_NE(c.error().message.find("delay"), std::string::npos);
}

TEST(LctParser, CircuitAfterElementsRejected) {
  const auto c =
      parse_circuit("phases 1\nlatch A phase=1 setup=1 dq=2\ncircuit late\n");
  EXPECT_FALSE(c);
}

TEST(LctWriter, RoundTripsExample1) {
  const Circuit original = circuits::example1(80.0);
  const std::string text = write_circuit(original);
  const auto back = parse_circuit(text);
  ASSERT_TRUE(back) << back.error().to_string();
  EXPECT_EQ(back->name(), original.name());
  EXPECT_EQ(back->num_elements(), original.num_elements());
  EXPECT_EQ(back->num_paths(), original.num_paths());
  for (int i = 0; i < original.num_paths(); ++i) {
    EXPECT_DOUBLE_EQ(back->path(i).delay, original.path(i).delay);
    EXPECT_EQ(back->path(i).label, original.path(i).label);
  }
}

TEST(LctWriter, RoundTripsGaasWithFlipFlops) {
  const Circuit original = circuits::gaas_datapath();
  const auto back = parse_circuit(write_circuit(original));
  ASSERT_TRUE(back) << back.error().to_string();
  EXPECT_EQ(back->num_elements(), original.num_elements());
  EXPECT_EQ(back->num_paths(), original.num_paths());
  for (int i = 0; i < original.num_elements(); ++i) {
    EXPECT_EQ(back->element(i).kind, original.element(i).kind);
    EXPECT_NEAR(back->element(i).setup, original.element(i).setup, 1e-6);
  }
  // Same optimum after the round trip.
  const auto a = opt::minimize_cycle_time(original);
  const auto b = opt::minimize_cycle_time(*back);
  ASSERT_TRUE(a && b);
  EXPECT_NEAR(a->min_cycle, b->min_cycle, 1e-4);
}

TEST(LctParser, MinExceedingDelayRejected) {
  const auto c = parse_circuit(
      "circuit t\nphases 1\nlatch A phase=1 setup=1 dq=2\nlatch B phase=1 setup=1 dq=2\n"
      "path A B delay=5 min=9\n");
  ASSERT_FALSE(c);
  EXPECT_NE(c.error().message.find("line 5"), std::string::npos);
  EXPECT_NE(c.error().message.find("exceeds delay"), std::string::npos);
}

TEST(LctParser, QuotedLabelWithSpacesHashEquals) {
  const auto c = parse_circuit(
      "circuit t\nphases 1\nlatch A phase=1 setup=1 dq=2\nlatch B phase=1 setup=1 dq=2\n"
      "path A B delay=5 label=\"ALU #2 = adder\" # trailing comment\n");
  ASSERT_TRUE(c) << c.error().to_string();
  EXPECT_EQ(c->path(0).label, "ALU #2 = adder");
}

TEST(LctParser, QuotedLabelWithEscapes) {
  const auto c = parse_circuit(
      "circuit t\nphases 1\nlatch A phase=1 setup=1 dq=2\nlatch B phase=1 setup=1 dq=2\n"
      "path A B delay=5 label=\"say \\\"hi\\\" \\\\ bye\"\n");
  ASSERT_TRUE(c) << c.error().to_string();
  EXPECT_EQ(c->path(0).label, "say \"hi\" \\ bye");
}

TEST(LctParser, UnterminatedQuoteRejected) {
  const auto c = parse_circuit(
      "circuit t\nphases 1\nlatch A phase=1 setup=1 dq=2\nlatch B phase=1 setup=1 dq=2\n"
      "path A B delay=5 label=\"oops\n");
  ASSERT_FALSE(c);
  EXPECT_NE(c.error().message.find("unterminated quote"), std::string::npos);
}

TEST(LctWriter, RoundTripsAwkwardLabels) {
  Circuit original("awkward", 2);
  original.add_latch("A", 1, 1.0, 2.0);
  original.add_latch("B", 2, 1.0, 2.0);
  original.add_path("A", "B", 10.0, 0.0, "two words");
  original.add_path("B", "A", 12.0, 0.0, "hash # inside");
  original.add_path("A", "A", 3.0, 0.0, "k=v");
  original.add_path("B", "B", 4.0, 0.0, "quote \" and \\ slash");
  const std::string text = write_circuit(original);
  const auto back = parse_circuit(text);
  ASSERT_TRUE(back) << back.error().to_string();
  ASSERT_EQ(back->num_paths(), original.num_paths());
  for (int i = 0; i < original.num_paths(); ++i) {
    EXPECT_EQ(back->path(i).label, original.path(i).label) << i;
    EXPECT_DOUBLE_EQ(back->path(i).delay, original.path(i).delay) << i;
  }
}

TEST(LctFiles, SaveAndLoad) {
  const std::string path = testing::TempDir() + "/roundtrip.lct";
  const Circuit original = circuits::example1(100.0);
  ASSERT_TRUE(save_circuit(original, path));
  const auto back = load_circuit(path);
  ASSERT_TRUE(back) << back.error().to_string();
  EXPECT_EQ(back->num_paths(), 4);
}

TEST(LctFiles, MissingFileIsIoError) {
  const auto c = load_circuit("/nonexistent/nope.lct");
  ASSERT_FALSE(c);
  EXPECT_EQ(c.error().kind, ErrorKind::kIo);
}

TEST(LctParser, SkewAttributeParsed) {
  const auto c = parse_circuit(
      "circuit t\nphases 2\n"
      "latch A phase=1 setup=1 dq=2 skew=0.5\n"
      "flipflop B phase=2 setup=1 cq=2 skew=0.25\n");
  ASSERT_TRUE(c) << c.error().to_string();
  EXPECT_DOUBLE_EQ(c->element(0).skew, 0.5);
  EXPECT_DOUBLE_EQ(c->element(1).skew, 0.25);  // flip-flops carry σ too
}

TEST(LctParser, NegativeSkewRejectedWithLineNumber) {
  const auto c = parse_circuit(
      "circuit t\nphases 1\nlatch A phase=1 setup=1 dq=2 skew=-0.5\n");
  ASSERT_FALSE(c);
  EXPECT_NE(c.error().message.find("line 3"), std::string::npos);
  EXPECT_NE(c.error().message.find("skew"), std::string::npos);
}

TEST(LctParser, NonFiniteSkewRejected) {
  EXPECT_FALSE(parse_circuit("circuit t\nphases 1\nlatch A phase=1 setup=1 dq=2 skew=inf\n"));
  EXPECT_FALSE(parse_circuit("circuit t\nphases 1\nlatch A phase=1 setup=1 dq=2 skew=nan\n"));
}

TEST(LctWriter, SkewRoundTripsAndZeroIsOmitted) {
  Circuit original = circuits::example1(80.0);
  original.element(0).skew = 1.25;
  original.element(2).skew = 0.5;
  const std::string text = write_circuit(original);
  EXPECT_NE(text.find("skew="), std::string::npos);
  const auto back = parse_circuit(text);
  ASSERT_TRUE(back) << back.error().to_string();
  for (int i = 0; i < original.num_elements(); ++i) {
    EXPECT_DOUBLE_EQ(back->element(i).skew, original.element(i).skew) << i;
  }
  // All-zero skews stay invisible: the seed corpus round-trips byte-stable.
  EXPECT_EQ(write_circuit(circuits::example1(80.0)).find("skew="), std::string::npos);
}

}  // namespace
}  // namespace mintc::parser
