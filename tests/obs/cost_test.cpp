// CostAccount / ThreadCpuTimer / charge_solve: the per-request attribution
// primitives. The serve-layer round trip (account totals == EngineStats on
// the wire) lives in tests/serve/cost_attribution_test.cpp; here we pin the
// obs-level contracts: context carriage, charging discipline, and the
// cross-thread aggregation the fixpoint shards rely on.
#include "obs/cost.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace mintc::obs {
namespace {

TEST(CostAccount, StartsZeroAndAccumulates) {
  CostAccount account;
  EXPECT_EQ(account.cpu_us.load(), 0);
  EXPECT_EQ(account.relaxations.load(), 0);
  account.add_cpu_us(120);
  account.add_cpu_us(30);
  account.add_solve(1000, 4);
  account.add_solve(500, 2);
  EXPECT_EQ(account.cpu_us.load(), 150);
  EXPECT_EQ(account.relaxations.load(), 1500);
  EXPECT_EQ(account.sweeps.load(), 6);
  EXPECT_EQ(account.solves.load(), 2);
}

TEST(CostAccount, NegativeCpuDeltasAreDropped) {
  // A CLOCK_THREAD_CPUTIME_ID read can regress across CPU migration on some
  // kernels; the account must never go backwards because of it.
  CostAccount account;
  account.add_cpu_us(-5);
  EXPECT_EQ(account.cpu_us.load(), 0);
}

TEST(CostAccount, CurrentAccountIsNullByDefault) {
  EXPECT_EQ(current_cost_account(), nullptr);
  charge_solve(100, 1);  // must be a safe no-op without an account
  EXPECT_EQ(current_cost_account(), nullptr);
}

TEST(CostAccount, TraceContextCarriesTheAccount) {
  CostAccount account;
  TraceContext context;
  context.cost = &account;
  {
    TraceContextScope scope(context);
    EXPECT_EQ(current_cost_account(), &account);
    charge_solve(42, 3);
    {
      // A nested scope without an account masks the outer one — exactly the
      // behavior a nested untraced sub-request needs.
      TraceContextScope inner((TraceContext()));
      EXPECT_EQ(current_cost_account(), nullptr);
      charge_solve(1000, 1);  // charged nowhere
    }
    EXPECT_EQ(current_cost_account(), &account);
  }
  EXPECT_EQ(current_cost_account(), nullptr);
  EXPECT_EQ(account.relaxations.load(), 42);
  EXPECT_EQ(account.sweeps.load(), 3);
  EXPECT_EQ(account.solves.load(), 1);
}

TEST(CostAccount, AccountRidesWithoutSampling) {
  // Cost attribution is independent of trace sampling: an unsampled context
  // (trace_id == 0) still carries the account.
  CostAccount account;
  TraceContext context;  // inactive: no id, not sampled
  context.cost = &account;
  TraceContextScope scope(context);
  EXPECT_FALSE(current_trace_context().active());
  EXPECT_EQ(current_cost_account(), &account);
}

TEST(CostAccount, ThreadCpuTimerChargesBusyTime) {
  CostAccount account;
  {
    ThreadCpuTimer timer(&account);
    // Burn a visible amount of thread CPU (~a few ms).
    volatile double sink = 1.0;
    for (int i = 0; i < 4000000; ++i) sink = sink * 1.0000001 + 0.5;
  }
  EXPECT_GT(account.cpu_us.load(), 0);
}

TEST(CostAccount, ThreadCpuTimerWithNullAccountIsANoOp) {
  ThreadCpuTimer timer(nullptr);  // must not crash or read the clock result
  SUCCEED();
}

TEST(CostAccount, ThreadCpuNowIsMonotonicOnThisThread) {
  const std::int64_t a = thread_cpu_now_us();
  volatile long sink = 0;
  for (int i = 0; i < 1000000; ++i) sink += i;
  const std::int64_t b = thread_cpu_now_us();
  EXPECT_GE(b, a);
}

TEST(CostAccount, AggregatesAcrossThreads) {
  // The fixpoint-shard pattern: the context (with its account pointer) is
  // copied by value into worker tasks; every worker charges the one shared
  // account concurrently.
  CostAccount account;
  TraceContext context;
  context.cost = &account;

  constexpr int kThreads = 8;
  constexpr int kChargesPerThread = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([context] {  // copied by value, like a pool task
      TraceContextScope scope(context);
      for (int i = 0; i < kChargesPerThread; ++i) charge_solve(3, 1);
      current_cost_account()->add_cpu_us(7);
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(account.relaxations.load(), 3L * kThreads * kChargesPerThread);
  EXPECT_EQ(account.sweeps.load(), 1L * kThreads * kChargesPerThread);
  EXPECT_EQ(account.solves.load(), 1L * kThreads * kChargesPerThread);
  EXPECT_EQ(account.cpu_us.load(), 7L * kThreads);
}

}  // namespace
}  // namespace mintc::obs
