// Golden-shape tests for the exporters: a canned optimizer run must produce
// Chrome trace-event JSON that is (a) well-formed JSON, (b) monotone in
// timestamp, and (c) balanced in B/E pairs per name — the three properties
// chrome://tracing needs to load the file at all.
#include "obs/export.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "circuits/example2.h"
#include "json_validate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/mlp.h"

namespace mintc::obs {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
    MetricsRegistry::instance().reset();
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
};

// Run the whole MLP pipeline on Example 2 with tracing on — the canned run.
std::vector<TraceEvent> canned_run_events() {
  Tracer::instance().set_enabled(true);
  const auto r = opt::minimize_cycle_time(circuits::example2());
  Tracer::instance().set_enabled(false);
  EXPECT_TRUE(r.has_value());
  return Tracer::instance().snapshot();
}

TEST_F(ExportTest, CannedRunProducesValidJson) {
  const std::string json = chrome_trace_json(canned_run_events());
  EXPECT_TRUE(mintc::testing::is_valid_json(json)) << json;
  // The documented envelope and the spans the MLP layer promises.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("mlp.solve"), std::string::npos);
  EXPECT_NE(json.find("mlp.lp-solve"), std::string::npos);
  EXPECT_NE(json.find("mlp.slide-fixpoint"), std::string::npos);
  EXPECT_NE(json.find("simplex.solve"), std::string::npos);
  EXPECT_NE(json.find("fixpoint.solve"), std::string::npos);
}

TEST_F(ExportTest, CannedRunTimestampsAreMonotone) {
  const std::vector<TraceEvent> events = canned_run_events();
  ASSERT_FALSE(events.empty());
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_us, events[i - 1].ts_us) << "at index " << i;
  }
}

TEST_F(ExportTest, CannedRunBeginEndPairsBalance) {
  const std::vector<TraceEvent> events = canned_run_events();
  std::map<std::string, int> depth;
  for (const TraceEvent& e : events) {
    if (e.kind == EventKind::kBegin) {
      ++depth[e.name];
    } else if (e.kind == EventKind::kEnd) {
      --depth[e.name];
      EXPECT_GE(depth[e.name], 0) << "end before begin for " << e.name;
    }
  }
  for (const auto& [name, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced span " << name;
  }
}

TEST_F(ExportTest, ChromeTraceEventShapes) {
  Tracer& t = Tracer::instance();
  t.set_enabled(true);
  t.begin_span("work", "cat");
  t.counter("residual", 2.5, "cat");
  t.instant("mark", "cat");
  t.end_span("work", "cat");
  t.set_enabled(false);
  const std::string json = chrome_trace_json(t.snapshot());
  EXPECT_TRUE(mintc::testing::is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 2.5"), std::string::npos);  // counter args
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);    // instant scope
}

TEST_F(ExportTest, EmptyTraceIsStillValidJson) {
  const std::string json = chrome_trace_json({});
  EXPECT_TRUE(mintc::testing::is_valid_json(json)) << json;
}

TEST_F(ExportTest, MetricsJsonIsValidAndEscaped) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("test.export.c", {{"note", "quote\"back\\slash"}}).inc(3);
  reg.histogram("test.export.h", {}, {1.0, 2.0}).observe(1.5);
  const std::string json = metrics_json(reg.snapshot());
  EXPECT_TRUE(mintc::testing::is_valid_json(json)) << json;
  EXPECT_NE(json.find("test.export.c"), std::string::npos);
  EXPECT_NE(json.find("\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST_F(ExportTest, MetricsJsonClampsNonFiniteGauges) {
  auto& reg = MetricsRegistry::instance();
  reg.gauge("test.export.overflowed").set(1.0 / 0.0);
  reg.gauge("test.export.undefined").set(0.0 / 0.0);
  const std::string json = metrics_json(reg.snapshot());
  // Bare NaN / Inf are not JSON; the exporter must clamp them.
  EXPECT_TRUE(mintc::testing::is_valid_json(json)) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST_F(ExportTest, MetricsJsonCarriesRunMetadataHeader) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("test.meta.c").inc();
  run_metadata().circuit = "meta_circuit";
  run_metadata().schedule_hash = fnv1a_hex("schedule-bytes");
  const std::string json = metrics_json(reg.snapshot());
  EXPECT_TRUE(mintc::testing::is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"meta\""), std::string::npos);
  EXPECT_NE(json.find("\"tool\": \"mintc "), std::string::npos);
  EXPECT_NE(json.find("\"circuit\": \"meta_circuit\""), std::string::npos);
  EXPECT_NE(json.find(fnv1a_hex("schedule-bytes")), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
  run_metadata().circuit.clear();
  run_metadata().schedule_hash.clear();
}

TEST_F(ExportTest, ChromeTraceCarriesRunMetadata) {
  const std::string json = chrome_trace_json({});
  EXPECT_TRUE(mintc::testing::is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"metadata\""), std::string::npos);
  EXPECT_NE(json.find("\"tool\""), std::string::npos);
}

TEST_F(ExportTest, Fnv1aMatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a_hex(""), "cbf29ce484222325");
  EXPECT_EQ(fnv1a_hex("a"), "af63dc4c8601ec8c");
  EXPECT_EQ(fnv1a_hex("foobar"), "85944171f73967e8");
}

TEST_F(ExportTest, HistogramJsonAndTableCarryQuantiles) {
  auto& reg = MetricsRegistry::instance();
  auto& h = reg.histogram("test.export.q", {}, {10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int v = 1; v <= 100; ++v) h.observe(v);
  const auto points = reg.snapshot();
  const std::string json = metrics_json(points);
  EXPECT_TRUE(mintc::testing::is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  const std::string table = metrics_table(points);
  EXPECT_NE(table.find("p50"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
  for (const MetricPoint& p : points) {
    if (p.name != "test.export.q") continue;
    EXPECT_NEAR(p.p50, 50.0, 10.0);
    EXPECT_NEAR(p.p95, 95.0, 10.0);
    EXPECT_NEAR(p.p99, 99.0, 10.0);
  }
}

TEST_F(ExportTest, MetricsTableMentionsEveryMetric) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("test.table.one").inc();
  reg.gauge("test.table.two").set(5.0);
  const std::string table = metrics_table(reg.snapshot());
  EXPECT_NE(table.find("test.table.one"), std::string::npos);
  EXPECT_NE(table.find("test.table.two"), std::string::npos);
}

TEST_F(ExportTest, ChromeTraceMergesTraceIdAndSpanArgs) {
  Tracer& t = Tracer::instance();
  {
    const TraceContextScope scope(TraceContext{0xdeadbeef01ull, true});
    const TraceSpan span("serve.request", "serve", R"({"verb":"analyze"})");
  }
  const std::string json = chrome_trace_json(t.snapshot());
  EXPECT_TRUE(mintc::testing::is_valid_json(json)) << json;
  // Span args and the hex trace id are SPLICED into one "args" object, not
  // nested under each other.
  EXPECT_NE(json.find("\"verb\":\"analyze\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace\": \"000000deadbeef01\""), std::string::npos) << json;
}

TEST_F(ExportTest, BeginEndPairsBalanceUnlessTruncated) {
  Tracer& t = Tracer::instance();
  t.set_capacity(4);
  t.set_enabled(true);
  for (int i = 0; i < 6; ++i) {
    const TraceSpan span("work", "test");
  }
  t.set_enabled(false);
  // The wrapped ring may hold an unmatched E at the front — but the
  // snapshot SAYS so via the truncation marker, which is the contract:
  // B/E balance is only promised for marker-free exports.
  const std::vector<TraceEvent> events = t.snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].name, kTruncationMarkerName);
  const std::string json = chrome_trace_json(events);
  EXPECT_TRUE(mintc::testing::is_valid_json(json)) << json;
  EXPECT_NE(json.find(kTruncationMarkerName), std::string::npos);
  t.set_capacity(0);
}

TEST_F(ExportTest, PrometheusTextGoldenFormat) {
  MetricsRegistry reg;  // local registry: exact golden output
  reg.counter("serve.requests", {{"verb", "analyze"}}).inc(3);
  reg.gauge("pool.depth").set(2.5);
  auto& h = reg.histogram("serve.latency_us", {}, {1.0, 10.0});
  h.observe(0.5);
  h.observe(4.0);
  h.observe(40.0);
  const std::string text = prometheus_text(reg.snapshot());
  // The derived _min/_max/_p999 gauges trail the snapshot-ordered families:
  // they are synthesized in a second pass so each suffix gets exactly one
  // # TYPE line even when several histograms contribute.
  const std::string expected =
      "# TYPE mintc_pool_depth gauge\n"
      "mintc_pool_depth 2.5\n"
      "# TYPE mintc_serve_latency_us histogram\n"
      "mintc_serve_latency_us_bucket{le=\"1\"} 1\n"
      "mintc_serve_latency_us_bucket{le=\"10\"} 2\n"
      "mintc_serve_latency_us_bucket{le=\"+Inf\"} 3\n"
      "mintc_serve_latency_us_sum 44.5\n"
      "mintc_serve_latency_us_count 3\n"
      "# TYPE mintc_serve_requests_total counter\n"
      "mintc_serve_requests_total{verb=\"analyze\"} 3\n"
      "# TYPE mintc_serve_latency_us_min gauge\n"
      "mintc_serve_latency_us_min 0.5\n"
      "# TYPE mintc_serve_latency_us_max gauge\n"
      "mintc_serve_latency_us_max 40\n"
      "# TYPE mintc_serve_latency_us_p999 gauge\n"
      "mintc_serve_latency_us_p999 39.91\n";
  EXPECT_EQ(text, expected);
}

TEST_F(ExportTest, PrometheusEscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("esc", {{"path", "a\\b\"c\nd"}}).inc();
  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_NE(text.find(R"(path="a\\b\"c\nd")"), std::string::npos) << text;
}

TEST_F(ExportTest, PrometheusHistogramBucketsAreCumulative) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat", {}, {1.0, 2.0, 5.0});
  for (const double v : {0.5, 1.5, 1.7, 3.0, 100.0}) h.observe(v);
  const std::string text = prometheus_text(reg.snapshot());
  EXPECT_NE(text.find("# TYPE mintc_lat histogram"), std::string::npos) << text;
  EXPECT_NE(text.find("mintc_lat_bucket{le=\"1\"} 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("mintc_lat_bucket{le=\"2\"} 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("mintc_lat_bucket{le=\"5\"} 4\n"), std::string::npos) << text;
  EXPECT_NE(text.find("mintc_lat_bucket{le=\"+Inf\"} 5\n"), std::string::npos) << text;
  EXPECT_NE(text.find("mintc_lat_count 5\n"), std::string::npos) << text;
  const size_t sum_pos = text.find("mintc_lat_sum ");
  ASSERT_NE(sum_pos, std::string::npos) << text;
  EXPECT_NEAR(std::stod(text.substr(sum_pos + 14)), 106.7, 1e-9);

  // Cumulative monotonicity, mechanically: successive bucket counts on the
  // same family must be non-decreasing and end at _count.
  long prev = -1;
  size_t pos = 0;
  while ((pos = text.find("mintc_lat_bucket{", pos)) != std::string::npos) {
    const size_t space = text.find(' ', pos);
    const long v = std::stol(text.substr(space + 1));
    EXPECT_GE(v, prev);
    prev = v;
    ++pos;
  }
  EXPECT_EQ(prev, 5);
}

TEST_F(ExportTest, PrometheusOneTypeLinePerFamily) {
  MetricsRegistry reg;
  reg.counter("fam", {{"verb", "a"}}).inc();
  reg.counter("fam", {{"verb", "b"}}).inc(2);
  const std::string text = prometheus_text(reg.snapshot());
  size_t type_lines = 0, pos = 0;
  while ((pos = text.find("# TYPE mintc_fam_total counter", pos)) != std::string::npos) {
    ++type_lines;
    ++pos;
  }
  EXPECT_EQ(type_lines, 1u) << text;
  EXPECT_NE(text.find("mintc_fam_total{verb=\"a\"} 1"), std::string::npos);
  EXPECT_NE(text.find("mintc_fam_total{verb=\"b\"} 2"), std::string::npos);
}

TEST_F(ExportTest, PrometheusSanitizesMetricNames) {
  MetricsRegistry reg;
  reg.gauge("pool.worker-utilization").set(0.5);
  const std::string text = prometheus_text(reg.snapshot());
  // Dots and dashes are not legal in Prometheus metric names.
  EXPECT_NE(text.find("mintc_pool_worker_utilization 0.5"), std::string::npos) << text;
}

}  // namespace
}  // namespace mintc::obs
