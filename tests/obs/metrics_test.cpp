#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace mintc::obs {
namespace {

// The registry is process-wide and shared across tests in this binary, so
// every test uses names scoped under "test." and starts from a clean slate.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::instance().reset(); }
};

TEST_F(MetricsTest, CounterIncrements) {
  Counter& c = MetricsRegistry::instance().counter("test.counter");
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
}

TEST_F(MetricsTest, SameNameAndLabelsReturnsSameHandle) {
  auto& reg = MetricsRegistry::instance();
  Counter& a = reg.counter("test.dup", {{"scheme", "jacobi"}});
  Counter& b = reg.counter("test.dup", {{"scheme", "jacobi"}});
  Counter& other = reg.counter("test.dup", {{"scheme", "gauss-seidel"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.inc();
  EXPECT_EQ(b.value(), 1);
  EXPECT_EQ(other.value(), 0);
}

TEST_F(MetricsTest, GaugeIsLastWriteWins) {
  Gauge& g = MetricsRegistry::instance().gauge("test.gauge");
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST_F(MetricsTest, HistogramBucketsAreUpperInclusive) {
  Histogram& h =
      MetricsRegistry::instance().histogram("test.hist", {}, {1.0, 2.0, 4.0});
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (bounds are inclusive)
  h.observe(1.5);   // <= 2
  h.observe(100.0); // +inf bucket
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 103.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  const std::vector<long> buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + inf
  EXPECT_EQ(buckets[0], 2);
  EXPECT_EQ(buckets[1], 1);
  EXPECT_EQ(buckets[2], 0);
  EXPECT_EQ(buckets[3], 1);
}

TEST_F(MetricsTest, MetricPointKeyRendersLabels) {
  MetricPoint p;
  p.name = "fixpoint.sweeps";
  p.labels = {{"scheme", "jacobi"}};
  EXPECT_EQ(p.key(), "fixpoint.sweeps{scheme=jacobi}");
  p.labels.clear();
  EXPECT_EQ(p.key(), "fixpoint.sweeps");
}

TEST_F(MetricsTest, SnapshotIsSortedByKeyAndCoversAllKinds) {
  auto& reg = MetricsRegistry::instance();
  reg.counter("test.snap.c").inc(7);
  reg.gauge("test.snap.g").set(2.5);
  reg.histogram("test.snap.h", {}, {1.0}).observe(0.5);

  const std::vector<MetricPoint> snap = reg.snapshot();
  std::vector<std::string> keys;
  for (const MetricPoint& p : snap) keys.push_back(p.key());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));

  const auto find = [&](const std::string& key) -> const MetricPoint* {
    for (const MetricPoint& p : snap) {
      if (p.key() == key) return &p;
    }
    return nullptr;
  };
  const MetricPoint* c = find("test.snap.c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(c->value, 7.0);
  const MetricPoint* g = find("test.snap.g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(g->value, 2.5);
  const MetricPoint* h = find("test.snap.h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, MetricKind::kHistogram);
  EXPECT_EQ(h->count, 1);
  ASSERT_EQ(h->buckets.size(), 2u);
  EXPECT_EQ(h->buckets[0], 1);
}

TEST_F(MetricsTest, ResetZeroesValuesButKeepsHandlesValid) {
  auto& reg = MetricsRegistry::instance();
  Counter& c = reg.counter("test.reset.c");
  Histogram& h = reg.histogram("test.reset.h");
  c.inc(5);
  h.observe(3.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  // Handles still work after reset.
  c.inc();
  h.observe(1.0);
  EXPECT_EQ(c.value(), 1);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(&c, &reg.counter("test.reset.c"));
}

TEST_F(MetricsTest, QuantilesOnKnownUniformDistribution) {
  // 1..100 into decade buckets: the interpolated estimate must land within
  // one bucket width of the exact order statistic, and the extremes are
  // exact (clamped to observed min/max).
  auto& h = MetricsRegistry::instance().histogram(
      "test.quantile.uniform", {}, {10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int v = 1; v <= 100; ++v) h.observe(v);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_NEAR(h.quantile(0.50), 50.0, 10.0);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 10.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 10.0);
  // Monotone in q.
  double prev = h.quantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev - 1e-12) << "at q=" << q;
    prev = cur;
  }
}

TEST_F(MetricsTest, QuantileEdgeCases) {
  auto& empty = MetricsRegistry::instance().histogram("test.quantile.empty", {}, {1.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);  // no data -> 0

  // A single observation: every quantile is that value.
  auto& one = MetricsRegistry::instance().histogram("test.quantile.one", {}, {10.0});
  one.observe(7.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 7.0);

  // All mass in the open-ended overflow bucket: estimates stay within the
  // observed [min, max] envelope.
  auto& over = MetricsRegistry::instance().histogram("test.quantile.over", {}, {1.0});
  over.observe(100.0);
  over.observe(200.0);
  EXPECT_GE(over.quantile(0.5), 100.0);
  EXPECT_LE(over.quantile(0.5), 200.0);
}

TEST_F(MetricsTest, SnapshotCarriesQuantileEstimates) {
  auto& h = MetricsRegistry::instance().histogram("test.quantile.snap", {}, {5.0, 10.0});
  for (int v = 1; v <= 10; ++v) h.observe(v);
  for (const MetricPoint& p : MetricsRegistry::instance().snapshot()) {
    if (p.name != "test.quantile.snap") continue;
    EXPECT_NEAR(p.p50, h.quantile(0.50), 1e-12);
    EXPECT_NEAR(p.p95, h.quantile(0.95), 1e-12);
    EXPECT_NEAR(p.p99, h.quantile(0.99), 1e-12);
  }
}

TEST_F(MetricsTest, DefaultBucketsAreAscendingPowersOfTwo) {
  const std::vector<double> b = default_buckets();
  ASSERT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.front(), 1.0);
  EXPECT_DOUBLE_EQ(b.back(), 4096.0);
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
}

// Registry snapshots racing live updates — the `metrics`/`status` verbs
// render snapshots on pool workers while request threads update counters
// and histograms. Run under TSan in CI; the invariants here catch torn
// reads even without it.
TEST_F(MetricsTest, MetricsConcurrencySnapshotDuringUpdates) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  Counter& counter = reg.counter("test.conc.counter");
  Gauge& gauge = reg.gauge("test.conc.gauge");
  Histogram& hist = reg.histogram("test.conc.hist", {}, {1.0, 10.0, 100.0});

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 5000;
  std::atomic<int> done{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        counter.inc();
        gauge.set(static_cast<double>(t));
        hist.observe(static_cast<double>(i % 200));
      }
      done.fetch_add(1);
    });
  }
  // do-while so the invariant is exercised at least once even if the
  // writers finish before this thread gets a slice.
  do {
    for (const MetricPoint& p : reg.snapshot()) {
      if (p.name == "test.conc.counter") {
        EXPECT_GE(p.value, 0.0);
        EXPECT_LE(p.value, static_cast<double>(kWriters) * kOpsPerWriter);
      } else if (p.name == "test.conc.hist") {
        // A histogram point is copied under its lock: count covers buckets.
        long in_buckets = 0;
        for (const long b : p.buckets) in_buckets += b;
        EXPECT_EQ(in_buckets, p.count);
      }
    }
  } while (done.load() < kWriters);
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(counter.value(), static_cast<long>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(hist.count(), static_cast<long>(kWriters) * kOpsPerWriter);
}

// New handles registering while another thread snapshots: the registry map
// itself is the shared state here, not the metric cells.
TEST_F(MetricsTest, MetricsConcurrencyRegistrationVsSnapshot) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  // reset() zeroes values but keeps handles registered by earlier tests in
  // this binary, so only the DELTA in snapshot size is ours.
  const size_t baseline = reg.snapshot().size();
  std::atomic<bool> stop{false};
  std::thread registrar([&] {
    for (int i = 0; i < 300; ++i) {
      reg.counter("test.conc.reg." + std::to_string(i)).inc();
      reg.gauge("test.conc.regg." + std::to_string(i)).set(1.0);
    }
    stop.store(true);
  });
  size_t max_seen = 0;
  while (!stop.load()) {
    max_seen = std::max(max_seen, reg.snapshot().size());
  }
  registrar.join();
  EXPECT_EQ(reg.snapshot().size(), baseline + 600u);
  EXPECT_LE(max_seen, baseline + 600u);
}

}  // namespace
}  // namespace mintc::obs
