// Sampling span profiler: hot-path contract (one relaxed load when off),
// sampler lifecycle, and the collapsed-stack / top-table exports. The
// profiler is a process-wide singleton, so every test stops the sampler and
// clears samples on its way out.
#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "obs/trace.h"

namespace mintc::obs {
namespace {

/// Spin inside nested TraceSpans for `ms` of wall time so the sampler has
/// plenty of ticks to observe "prof-outer;prof-inner".
void burn_in_spans(long ms) {
  const auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < until) {
    TraceSpan outer("prof-outer", "test");
    volatile double sink = 1.0;
    {
      TraceSpan inner("prof-inner", "test");
      for (int i = 0; i < 20000; ++i) sink = sink * 1.0000001 + 1.0;
    }
    for (int i = 0; i < 2000; ++i) sink = sink * 1.0000001 + 1.0;
  }
}

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::instance().stop();
    Profiler::instance().clear();
  }
  void TearDown() override {
    Profiler::instance().stop();
    Profiler::instance().clear();
  }
};

TEST_F(ProfilerTest, DisabledByDefault) {
  EXPECT_FALSE(Profiler::enabled());
  EXPECT_FALSE(Profiler::try_push("never"));
  const Profiler::Profile p = Profiler::instance().profile();
  EXPECT_EQ(p.total_samples, 0);
  EXPECT_TRUE(p.stacks.empty());
}

TEST_F(ProfilerTest, SamplesNestedSpanPaths) {
  Profiler::instance().start(200);
  EXPECT_TRUE(Profiler::enabled());
  std::thread worker([] { burn_in_spans(120); });
  worker.join();
  Profiler::instance().stop();
  EXPECT_FALSE(Profiler::enabled());

  const Profiler::Profile p = Profiler::instance().profile();
  EXPECT_EQ(p.interval_us, 200);
  EXPECT_GT(p.total_samples, 0);
  bool saw_nested = false;
  long ticks = 0;
  for (const auto& [path, count] : p.stacks) {
    EXPECT_GT(count, 0);
    ticks += count;
    if (path == "prof-outer;prof-inner") saw_nested = true;
  }
  EXPECT_TRUE(saw_nested) << Profiler::instance().collapsed();
  EXPECT_LE(ticks + p.idle_samples, p.total_samples);
  // Most of the burn happens inside the inner span, so the nested path must
  // lead the (count-descending) stack list's top few entries.
  ASSERT_FALSE(p.stacks.empty());
  EXPECT_GE(p.stacks.front().second, p.stacks.back().second);
}

TEST_F(ProfilerTest, CollapsedAndTopTableCarryTheLeaf) {
  Profiler::instance().start(200);
  burn_in_spans(80);
  Profiler::instance().stop();

  const std::string collapsed = Profiler::instance().collapsed();
  EXPECT_NE(collapsed.find("prof-outer;prof-inner "), std::string::npos) << collapsed;
  // Each line is "path count\n": the token after the last space parses as a
  // positive integer.
  const size_t nl = collapsed.find('\n');
  ASSERT_NE(nl, std::string::npos);
  const std::string first = collapsed.substr(0, nl);
  const size_t sp = first.rfind(' ');
  ASSERT_NE(sp, std::string::npos);
  EXPECT_GT(std::stol(first.substr(sp + 1)), 0);

  const std::string table = Profiler::instance().top_table(5);
  EXPECT_NE(table.find("prof-inner"), std::string::npos) << table;
}

TEST_F(ProfilerTest, IdleThreadsAreCountedAsIdle) {
  Profiler::instance().start(200);
  {
    // Register this thread's stack, then go idle with the sampler running.
    TraceSpan s("prof-idle-probe", "test");
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  Profiler::instance().stop();
  const Profiler::Profile p = Profiler::instance().profile();
  EXPECT_GT(p.idle_samples, 0);
}

TEST_F(ProfilerTest, ClearDropsSamples) {
  Profiler::instance().start(200);
  burn_in_spans(30);
  Profiler::instance().stop();
  ASSERT_GT(Profiler::instance().profile().total_samples, 0);
  Profiler::instance().clear();
  const Profiler::Profile p = Profiler::instance().profile();
  EXPECT_EQ(p.total_samples, 0);
  EXPECT_TRUE(p.stacks.empty());
  EXPECT_TRUE(Profiler::instance().collapsed().empty());
}

TEST_F(ProfilerTest, PopStaysBalancedAcrossStop) {
  Profiler::instance().start(200);
  const bool owed = Profiler::try_push("prof-straddle");
  ASSERT_TRUE(owed);
  Profiler::instance().stop();  // disable while the frame is open
  Profiler::pop();              // must still balance without crashing
  SUCCEED();
}

TEST_F(ProfilerTest, StartAndStopAreIdempotent) {
  Profiler::instance().start(200);
  Profiler::instance().start(500);  // no-op while running: keeps 200us
  burn_in_spans(30);
  Profiler::instance().stop();
  Profiler::instance().stop();
  EXPECT_EQ(Profiler::instance().profile().interval_us, 200);
}

TEST_F(ProfilerTest, ManyShortLivedThreadsReuseStackSlots) {
  // Thread stacks are marked dead on exit and reused — the registry must
  // not grow per thread. No direct size accessor; this is primarily a TSan
  // target (lease/release vs sampler walk) plus a liveness check.
  Profiler::instance().start(200);
  for (int round = 0; round < 20; ++round) {
    std::thread t([] {
      TraceSpan s("prof-ephemeral", "test");
      volatile double sink = 1.0;
      for (int i = 0; i < 50000; ++i) sink = sink * 1.0000001 + 1.0;
    });
    t.join();
  }
  Profiler::instance().stop();
  EXPECT_GE(Profiler::instance().profile().total_samples, 0);
}

}  // namespace
}  // namespace mintc::obs
