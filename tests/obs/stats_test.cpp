#include "obs/stats.h"

#include <gtest/gtest.h>

#include <string>

namespace mintc {
namespace {

TEST(EngineStatsTest, StagesAccumulateByName) {
  EngineStats s;
  s.add_stage("bracket", 0.25);
  s.add_stage("binary-search", 0.5);
  s.add_stage("bracket", 0.25);  // same name folds into the existing entry
  ASSERT_EQ(s.stages.size(), 2u);
  EXPECT_EQ(s.stages[0].first, "bracket");
  EXPECT_DOUBLE_EQ(s.stages[0].second, 0.5);
  EXPECT_DOUBLE_EQ(s.stage_seconds(), 1.0);
}

TEST(EngineStatsTest, ConsistentAllowsUnsetWall) {
  EngineStats s;
  s.solve_seconds = 123.0;
  // wall == 0 means "nobody timed the whole call": nothing to check against.
  EXPECT_TRUE(s.consistent());
}

TEST(EngineStatsTest, ConsistentAcceptsStagesWithinWall) {
  EngineStats s;
  s.view_build_seconds = 0.1;
  s.solve_seconds = 0.3;
  s.add_stage("lp-solve", 0.4);
  s.wall_seconds = 1.0;
  EXPECT_TRUE(s.consistent());
  EXPECT_DOUBLE_EQ(s.accounted_seconds(), 0.8);
}

TEST(EngineStatsTest, ConsistentCatchesDoubleCountedStages) {
  // The PR2 bug this guards against: absorbing the same child stats twice
  // (or copying stats and then re-adding stages) makes the per-stage sum
  // exceed the wall clock that supposedly contains it.
  EngineStats s;
  s.wall_seconds = 1.0;
  s.add_stage("lp-solve", 0.7);
  EXPECT_TRUE(s.consistent());
  s.add_stage("lp-solve", 0.7);  // the double count
  EXPECT_FALSE(s.consistent());
}

TEST(EngineStatsTest, AbsorbMergesEverythingButWall) {
  EngineStats outer;
  outer.wall_seconds = 2.0;
  outer.solve_seconds = 0.2;
  outer.sweeps = 3;
  outer.add_stage("bracket", 0.1);

  EngineStats inner;
  // The inner call's own wall: covered by the outer one, and large enough
  // that inner satisfies the consistent() precondition absorb() asserts
  // (accounted = 0.05 + 0.3 + 0.2 + 0.1 = 0.65 <= wall).
  inner.wall_seconds = 0.7;
  inner.view_build_seconds = 0.05;
  inner.solve_seconds = 0.3;
  inner.sweeps = 7;
  inner.edge_relaxations = 40;
  inner.add_stage("bracket", 0.2);
  inner.add_stage("provenance", 0.1);

  outer.absorb(inner);
  // Wall is NOT summed: the outer timer already spans the inner call.
  EXPECT_DOUBLE_EQ(outer.wall_seconds, 2.0);
  EXPECT_DOUBLE_EQ(outer.view_build_seconds, 0.05);
  EXPECT_DOUBLE_EQ(outer.solve_seconds, 0.5);
  EXPECT_EQ(outer.sweeps, 10);
  EXPECT_EQ(outer.edge_relaxations, 40);
  ASSERT_EQ(outer.stages.size(), 2u);
  EXPECT_DOUBLE_EQ(outer.stages[0].second, 0.3);  // bracket merged by name
  EXPECT_EQ(outer.stages[1].first, "provenance");
  EXPECT_TRUE(outer.consistent());
}

TEST(EngineStatsTest, ToStringMentionsWallOnlyWhenTimed) {
  EngineStats s;
  s.sweeps = 2;
  EXPECT_EQ(s.to_string().find("wall"), std::string::npos);
  s.wall_seconds = 0.001;
  EXPECT_NE(s.to_string().find("wall"), std::string::npos);
}

TEST(StageTimerTest, MeasuresElapsedTime) {
  const StageTimer t;
  volatile double x = 1.0;
  for (int i = 0; i < 1000; ++i) x = x * 1.0000001;
  EXPECT_GE(t.seconds(), 0.0);
}

}  // namespace
}  // namespace mintc
