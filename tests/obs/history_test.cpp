// HistoryRing: the bounded sliding window behind the status dashboard's
// sparklines. The wrap/ordering and concurrency suites here are in the TSan
// CI job's filter — the recorder is the daemon tick thread while readers
// are pool workers rendering the status page.
#include "obs/history.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace mintc::obs {
namespace {

HistoryRing::Sample sample(double t, double value) {
  HistoryRing::Sample s;
  s.t_seconds = t;
  s.values = {{"v", value}};
  return s;
}

TEST(HistoryRing, RecordsInOrderBeforeWrap) {
  HistoryRing ring(8);
  for (int i = 0; i < 5; ++i) ring.record(sample(i, 10.0 * i));
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.total_recorded(), 5u);
  const std::vector<HistoryRing::Sample> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(snap[static_cast<size_t>(i)].t_seconds, i);
  }
}

TEST(HistoryRing, WrapKeepsTheNewestOldestFirst) {
  HistoryRing ring(4);
  for (int i = 0; i < 10; ++i) ring.record(sample(i, i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_recorded(), 10u);
  const std::vector<HistoryRing::Sample> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Samples 6,7,8,9 survive, oldest first.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(snap[i].t_seconds, 6.0 + static_cast<double>(i));
  }
}

TEST(HistoryRing, SeriesAlignsWithNaNGaps) {
  HistoryRing ring(8);
  ring.record(sample(0, 1.0));
  HistoryRing::Sample other;  // lacks "v": series must hold the slot open
  other.t_seconds = 1.0;
  other.values = {{"w", 9.0}};
  ring.record(other);
  ring.record(sample(2, 3.0));

  const std::vector<double> v = ring.series("v");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_TRUE(std::isnan(v[1]));
  EXPECT_DOUBLE_EQ(v[2], 3.0);
  const std::vector<double> missing = ring.series("nope");
  ASSERT_EQ(missing.size(), 3u);
  for (const double x : missing) EXPECT_TRUE(std::isnan(x));
}

TEST(HistoryRing, CapacityClampsToAtLeastTwo) {
  HistoryRing ring(0);
  EXPECT_GE(ring.capacity(), 2u);
  for (int i = 0; i < 5; ++i) ring.record(sample(i, i));
  EXPECT_EQ(ring.size(), ring.capacity());
}

TEST(HistoryRing, ClearDropsSamplesButKeepsTotal) {
  HistoryRing ring(4);
  for (int i = 0; i < 3; ++i) ring.record(sample(i, i));
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
  ring.record(sample(9, 9));
  EXPECT_EQ(ring.snapshot().size(), 1u);
}

TEST(HistoryRing, ConcurrentRecordAndSnapshot) {
  // One writer (the daemon tick) racing readers (status-page renders). Run
  // under TSan in CI; the assertions here check the ring never tears a
  // sample: every snapshot is a window of consecutive timestamps.
  HistoryRing ring(16);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) ring.record(sample(i, i));
    stop.store(true);
  });
  int checked = 0;
  // do-while: under heavy load the writer can finish before this thread is
  // scheduled at all; always validate at least one snapshot.
  do {
    const std::vector<HistoryRing::Sample> snap = ring.snapshot();
    for (size_t i = 1; i < snap.size(); ++i) {
      ASSERT_DOUBLE_EQ(snap[i].t_seconds, snap[i - 1].t_seconds + 1.0);
    }
    ring.series("v");
    ++checked;
  } while (!stop.load());
  writer.join();
  EXPECT_GT(checked, 0);
  EXPECT_EQ(ring.total_recorded(), 20000u);
}

}  // namespace
}  // namespace mintc::obs
