#include "obs/trace.h"

#include <gtest/gtest.h>

#include <vector>

namespace mintc::obs {
namespace {

// The tracer is process-wide: each test starts disabled with an empty buffer.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer& t = Tracer::instance();
  EXPECT_FALSE(t.enabled());
  EXPECT_FALSE(t.begin_span("s"));
  t.instant("i");
  t.counter("c", 1.0);
  { const TraceSpan span("raii"); }
  EXPECT_EQ(t.num_events(), 0u);
}

TEST_F(TraceTest, SpanRecordsBalancedBeginEnd) {
  Tracer& t = Tracer::instance();
  t.set_enabled(true);
  {
    const TraceSpan outer("outer", "test");
    const TraceSpan inner("inner", "test");
  }
  const std::vector<TraceEvent> ev = t.snapshot();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[0].kind, EventKind::kBegin);
  EXPECT_EQ(ev[0].name, "outer");
  EXPECT_EQ(ev[1].kind, EventKind::kBegin);
  EXPECT_EQ(ev[1].name, "inner");
  // Nested spans close innermost first.
  EXPECT_EQ(ev[2].kind, EventKind::kEnd);
  EXPECT_EQ(ev[2].name, "inner");
  EXPECT_EQ(ev[3].kind, EventKind::kEnd);
  EXPECT_EQ(ev[3].name, "outer");
}

TEST_F(TraceTest, SpanStaysBalancedAcrossDisableEdge) {
  Tracer& t = Tracer::instance();
  t.set_enabled(true);
  {
    const TraceSpan span("crossing", "test");
    t.set_enabled(false);  // disabled mid-span: the end must still land
  }
  const std::vector<TraceEvent> ev = t.snapshot();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].kind, EventKind::kBegin);
  EXPECT_EQ(ev[1].kind, EventKind::kEnd);
}

TEST_F(TraceTest, SpanStartedWhileDisabledRecordsNoEnd) {
  Tracer& t = Tracer::instance();
  {
    const TraceSpan span("unrecorded", "test");
    t.set_enabled(true);  // enabled mid-span: no begin, so no end either
  }
  EXPECT_EQ(t.num_events(), 0u);
}

TEST_F(TraceTest, TimestampsAreMonotoneInBufferOrder) {
  Tracer& t = Tracer::instance();
  t.set_enabled(true);
  for (int i = 0; i < 50; ++i) t.instant("tick", "test");
  const std::vector<TraceEvent> ev = t.snapshot();
  ASSERT_EQ(ev.size(), 50u);
  for (size_t i = 1; i < ev.size(); ++i) {
    EXPECT_GE(ev[i].ts_us, ev[i - 1].ts_us) << "at index " << i;
  }
}

TEST_F(TraceTest, CounterCarriesValue) {
  Tracer& t = Tracer::instance();
  t.set_enabled(true);
  t.counter("residual", 0.125, "test");
  const std::vector<TraceEvent> ev = t.snapshot();
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].kind, EventKind::kCounter);
  EXPECT_DOUBLE_EQ(ev[0].value, 0.125);
  EXPECT_EQ(ev[0].category, "test");
}

TEST_F(TraceTest, SnapshotSinceSlicesSuffix) {
  Tracer& t = Tracer::instance();
  t.set_enabled(true);
  t.instant("a", "test");
  t.instant("b", "test");
  const size_t mark = t.num_events();
  t.instant("c", "test");
  const std::vector<TraceEvent> suffix = t.snapshot(mark);
  ASSERT_EQ(suffix.size(), 1u);
  EXPECT_EQ(suffix[0].name, "c");
  // A mark past the end yields an empty slice, not a crash.
  EXPECT_TRUE(t.snapshot(1000).empty());
}

TEST_F(TraceTest, ClearEmptiesTheBuffer) {
  Tracer& t = Tracer::instance();
  t.set_enabled(true);
  t.instant("x", "test");
  EXPECT_EQ(t.num_events(), 1u);
  t.clear();
  EXPECT_EQ(t.num_events(), 0u);
}

}  // namespace
}  // namespace mintc::obs
