#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace mintc::obs {
namespace {

// The tracer is process-wide: each test starts disabled, unbounded, with an
// empty buffer and no trace context installed.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().set_capacity(0);
    Tracer::instance().clear();
    exchange_trace_context({});
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().set_capacity(0);
    Tracer::instance().clear();
    exchange_trace_context({});
  }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer& t = Tracer::instance();
  EXPECT_FALSE(t.enabled());
  EXPECT_FALSE(t.begin_span("s"));
  t.instant("i");
  t.counter("c", 1.0);
  { const TraceSpan span("raii"); }
  EXPECT_EQ(t.num_events(), 0u);
}

TEST_F(TraceTest, SpanRecordsBalancedBeginEnd) {
  Tracer& t = Tracer::instance();
  t.set_enabled(true);
  {
    const TraceSpan outer("outer", "test");
    const TraceSpan inner("inner", "test");
  }
  const std::vector<TraceEvent> ev = t.snapshot();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[0].kind, EventKind::kBegin);
  EXPECT_EQ(ev[0].name, "outer");
  EXPECT_EQ(ev[1].kind, EventKind::kBegin);
  EXPECT_EQ(ev[1].name, "inner");
  // Nested spans close innermost first.
  EXPECT_EQ(ev[2].kind, EventKind::kEnd);
  EXPECT_EQ(ev[2].name, "inner");
  EXPECT_EQ(ev[3].kind, EventKind::kEnd);
  EXPECT_EQ(ev[3].name, "outer");
}

TEST_F(TraceTest, SpanStaysBalancedAcrossDisableEdge) {
  Tracer& t = Tracer::instance();
  t.set_enabled(true);
  {
    const TraceSpan span("crossing", "test");
    t.set_enabled(false);  // disabled mid-span: the end must still land
  }
  const std::vector<TraceEvent> ev = t.snapshot();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].kind, EventKind::kBegin);
  EXPECT_EQ(ev[1].kind, EventKind::kEnd);
}

TEST_F(TraceTest, SpanStartedWhileDisabledRecordsNoEnd) {
  Tracer& t = Tracer::instance();
  {
    const TraceSpan span("unrecorded", "test");
    t.set_enabled(true);  // enabled mid-span: no begin, so no end either
  }
  EXPECT_EQ(t.num_events(), 0u);
}

TEST_F(TraceTest, TimestampsAreMonotoneInBufferOrder) {
  Tracer& t = Tracer::instance();
  t.set_enabled(true);
  for (int i = 0; i < 50; ++i) t.instant("tick", "test");
  const std::vector<TraceEvent> ev = t.snapshot();
  ASSERT_EQ(ev.size(), 50u);
  for (size_t i = 1; i < ev.size(); ++i) {
    EXPECT_GE(ev[i].ts_us, ev[i - 1].ts_us) << "at index " << i;
  }
}

TEST_F(TraceTest, CounterCarriesValue) {
  Tracer& t = Tracer::instance();
  t.set_enabled(true);
  t.counter("residual", 0.125, "test");
  const std::vector<TraceEvent> ev = t.snapshot();
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].kind, EventKind::kCounter);
  EXPECT_DOUBLE_EQ(ev[0].value, 0.125);
  EXPECT_EQ(ev[0].category, "test");
}

TEST_F(TraceTest, SnapshotSinceSlicesSuffix) {
  Tracer& t = Tracer::instance();
  t.set_enabled(true);
  t.instant("a", "test");
  t.instant("b", "test");
  const size_t mark = t.num_events();
  t.instant("c", "test");
  const std::vector<TraceEvent> suffix = t.snapshot(mark);
  ASSERT_EQ(suffix.size(), 1u);
  EXPECT_EQ(suffix[0].name, "c");
  // A mark past the end yields an empty slice, not a crash.
  EXPECT_TRUE(t.snapshot(1000).empty());
}

TEST_F(TraceTest, ClearEmptiesTheBuffer) {
  Tracer& t = Tracer::instance();
  t.set_enabled(true);
  t.instant("x", "test");
  EXPECT_EQ(t.num_events(), 1u);
  t.clear();
  EXPECT_EQ(t.num_events(), 0u);
}

TEST_F(TraceTest, RingDropsOldestAndMarksTruncation) {
  Tracer& t = Tracer::instance();
  t.set_capacity(4);
  t.set_enabled(true);
  const long dropped_before =
      MetricsRegistry::instance().counter("trace.dropped_spans").value();
  for (int i = 0; i < 10; ++i) t.instant("t" + std::to_string(i), "test");
  EXPECT_EQ(t.num_events(), 10u);  // counts dropped events too (stable marks)
  EXPECT_EQ(t.dropped(), 6u);
  EXPECT_EQ(MetricsRegistry::instance().counter("trace.dropped_spans").value(),
            dropped_before + 6);

  const std::vector<TraceEvent> ev = t.snapshot();
  ASSERT_EQ(ev.size(), 5u);  // marker + the 4 retained events
  EXPECT_EQ(ev[0].name, kTruncationMarkerName);
  EXPECT_EQ(ev[0].kind, EventKind::kInstant);
  EXPECT_DOUBLE_EQ(ev[0].value, 6.0);
  EXPECT_NE(ev[0].args.find("\"dropped\""), std::string::npos);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ev[static_cast<size_t>(i) + 1].name, "t" + std::to_string(6 + i));
  }
}

TEST_F(TraceTest, SnapshotOfRetainedSuffixHasNoMarker) {
  Tracer& t = Tracer::instance();
  t.set_capacity(4);
  t.set_enabled(true);
  for (int i = 0; i < 10; ++i) t.instant("warm", "test");
  const size_t mark = t.num_events();
  t.instant("a", "test");
  t.instant("b", "test");
  // The [mark, now) range is fully buffered: no truncation marker even
  // though the ring wrapped earlier.
  const std::vector<TraceEvent> ev = t.snapshot(mark);
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].name, "a");
  EXPECT_EQ(ev[1].name, "b");
}

TEST_F(TraceTest, ShrinkingCapacityTrimsOldest) {
  Tracer& t = Tracer::instance();
  t.set_enabled(true);
  for (int i = 0; i < 5; ++i) t.instant("e" + std::to_string(i), "test");
  t.set_capacity(2);
  EXPECT_EQ(t.dropped(), 3u);
  const std::vector<TraceEvent> ev = t.snapshot();
  ASSERT_EQ(ev.size(), 3u);  // marker + 2 survivors
  EXPECT_EQ(ev[0].name, kTruncationMarkerName);
  EXPECT_EQ(ev[1].name, "e3");
  EXPECT_EQ(ev[2].name, "e4");
}

TEST_F(TraceTest, SampledContextActivatesRecordingAndStampsId) {
  Tracer& t = Tracer::instance();
  EXPECT_FALSE(t.enabled());
  {
    const TraceContextScope scope(TraceContext{0xdeadbeef, true});
    EXPECT_TRUE(t.enabled());  // context alone forces recording on
    t.instant("in-request", "test");
  }
  EXPECT_FALSE(t.enabled());
  t.instant("after", "test");  // context gone: not recorded
  const std::vector<TraceEvent> ev = t.snapshot();
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].name, "in-request");
  EXPECT_EQ(ev[0].trace_id, 0xdeadbeefu);
}

TEST_F(TraceTest, InactiveContextsDoNotActivate) {
  Tracer& t = Tracer::instance();
  {
    const TraceContextScope unsampled(TraceContext{42, false});
    EXPECT_FALSE(t.enabled());
  }
  {
    const TraceContextScope zero_id(TraceContext{0, true});
    EXPECT_FALSE(t.enabled());
  }
  EXPECT_EQ(t.num_events(), 0u);
}

TEST_F(TraceTest, NestedScopesRestoreThePreviousContext) {
  const TraceContextScope outer(TraceContext{7, true});
  {
    const TraceContextScope inner(TraceContext{9, true});
    EXPECT_EQ(current_trace_context().trace_id, 9u);
  }
  EXPECT_EQ(current_trace_context().trace_id, 7u);
  EXPECT_TRUE(current_trace_context().sampled);
}

TEST_F(TraceTest, EventsCarryDistinctThreadIds) {
  Tracer& t = Tracer::instance();
  t.set_enabled(true);
  t.instant("main", "test");
  std::thread worker([&] { t.instant("worker", "test"); });
  worker.join();
  const std::vector<TraceEvent> ev = t.snapshot();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_GE(ev[0].tid, 1);
  EXPECT_GE(ev[1].tid, 1);
  EXPECT_NE(ev[0].tid, ev[1].tid);
}

TEST_F(TraceTest, ContextPropagatesIntoWorkerThread) {
  Tracer& t = Tracer::instance();
  const TraceContext context{0xabc, true};
  std::thread worker([&, context] {
    const TraceContextScope scope(context);  // by-value hop, as pool tasks do
    t.instant("shard", "test");
  });
  worker.join();
  const std::vector<TraceEvent> ev = t.snapshot();
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_EQ(ev[0].trace_id, 0xabcu);
}

}  // namespace
}  // namespace mintc::obs
