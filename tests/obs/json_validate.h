// A tiny recursive-descent JSON syntax checker for exporter tests: no DOM,
// just "is this byte string well-formed JSON". Strict enough to catch the
// classic exporter bugs (trailing commas, unescaped quotes, bare NaN/Inf).
#pragma once

#include <cctype>
#include <string>

namespace mintc::testing {

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_lit();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string_lit()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string_lit() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<size_t>(i) >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_ + static_cast<size_t>(i)]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
                   e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  size_t pos_ = 0;
};

inline bool is_valid_json(const std::string& text) { return JsonValidator(text).valid(); }

}  // namespace mintc::testing
