// The simulator is an independent implementation of the latch semantics;
// its steady state must agree with the analytical fixpoint everywhere.
#include "sim/token_sim.h"

#include <gtest/gtest.h>

#include "circuits/appendix_fig1.h"
#include "circuits/example1.h"
#include "circuits/example2.h"
#include "circuits/gaas.h"
#include "circuits/synthetic.h"
#include "opt/mlp.h"
#include "sta/fixpoint.h"

namespace mintc::sim {
namespace {

void expect_sim_matches_fixpoint(const Circuit& c, const ClockSchedule& sch) {
  const SimResult sim = simulate_tokens(c, sch);
  ASSERT_TRUE(sim.converged) << c.name();
  const sta::FixpointResult fix = sta::compute_departures(
      c, sch, std::vector<double>(static_cast<size_t>(c.num_elements()), 0.0));
  ASSERT_TRUE(fix.converged) << c.name();
  for (int i = 0; i < c.num_elements(); ++i) {
    EXPECT_NEAR(sim.departure[static_cast<size_t>(i)],
                fix.departure[static_cast<size_t>(i)], 1e-7)
        << c.name() << " element " << c.element(i).name;
  }
}

TEST(TokenSim, MatchesFixpointOnExample1) {
  expect_sim_matches_fixpoint(circuits::example1(80.0),
                              ClockSchedule(110.0, {0.0, 80.0}, {80.0, 30.0}));
  expect_sim_matches_fixpoint(circuits::example1(120.0),
                              ClockSchedule(140.0, {0.0, 70.0}, {70.0, 60.0}));
}

TEST(TokenSim, MatchesFixpointOnOptimizedCircuits) {
  for (const Circuit& c : {circuits::example2(), circuits::gaas_datapath(),
                           circuits::appendix_fig1()}) {
    const auto r = opt::minimize_cycle_time(c);
    ASSERT_TRUE(r) << c.name();
    // Simulate slightly above the optimum so the steady state is strictly
    // feasible (at the exact optimum, zero-slack loops converge but the
    // simulator's generation count can be large).
    expect_sim_matches_fixpoint(c, r->schedule.scaled(1.01));
  }
}

TEST(TokenSim, MatchesFixpointOnSyntheticCircuits) {
  circuits::SyntheticParams p;
  p.num_phases = 3;
  p.num_stages = 6;
  p.latches_per_stage = 3;
  for (const uint64_t seed : {5u, 6u, 7u}) {
    const Circuit c = circuits::synthetic_circuit(p, seed);
    const auto r = opt::minimize_cycle_time(c);
    ASSERT_TRUE(r);
    expect_sim_matches_fixpoint(c, r->schedule.scaled(1.02));
  }
}

TEST(TokenSim, SetupViolationDetectedBelowOptimum) {
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule bad(95.0, {0.0, 65.0}, {65.0, 30.0});
  const SimResult sim = simulate_tokens(c, bad);
  EXPECT_FALSE(sim.setup_ok);
  EXPECT_GE(sim.first_violation_generation, 0);
}

TEST(TokenSim, DivergentLoopDoesNotReachSteadyState) {
  Circuit c("race", 1);
  c.add_latch("A", 1, 1.0, 2.0);
  c.add_latch("B", 1, 1.0, 2.0);
  c.add_path("A", "B", 30.0);
  c.add_path("B", "A", 30.0);
  SimOptions opt;
  opt.max_generations = 64;
  const SimResult sim = simulate_tokens(c, ClockSchedule(10.0, {0.0}, {10.0}), opt);
  EXPECT_FALSE(sim.converged);
  EXPECT_FALSE(sim.setup_ok);  // lateness eventually blows the setup window
}

TEST(TokenSim, ConvergesQuicklyWithSlack) {
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule roomy(150.0, {0.0, 100.0}, {100.0, 50.0});
  const SimResult sim = simulate_tokens(c, roomy);
  ASSERT_TRUE(sim.converged);
  EXPECT_LE(sim.generations, 8);
  EXPECT_TRUE(sim.setup_ok);
}

TEST(TokenSim, FlipFlopLaunchesAtEdge) {
  Circuit c("ff", 2);
  c.add_latch("L", 1, 1.0, 2.0);
  c.add_flipflop("F", 2, 1.0, 2.0);
  c.add_path("L", "F", 5.0);
  c.add_path("F", "L", 5.0);
  const ClockSchedule sch(60.0, {0.0, 30.0}, {25.0, 25.0});
  const SimResult sim = simulate_tokens(c, sch);
  ASSERT_TRUE(sim.converged);
  EXPECT_DOUBLE_EQ(sim.departure[1], 0.0);
  EXPECT_TRUE(sim.setup_ok);
}

TEST(TokenSim, EmptyAndDegenerateInputs) {
  Circuit empty("empty", 1);
  EXPECT_TRUE(simulate_tokens(empty, ClockSchedule(10.0, {0.0}, {5.0})).converged);
  const Circuit c = circuits::example1(80.0);
  EXPECT_TRUE(simulate_tokens(c, ClockSchedule(0.0, {0.0, 0.0}, {0.0, 0.0})).converged);
}

TEST(TokenSim, EventCountIsBoundedByGenerations) {
  const Circuit c = circuits::example1(80.0);
  const SimResult sim = simulate_tokens(c, ClockSchedule(110.0, {0.0, 80.0}, {80.0, 30.0}));
  ASSERT_TRUE(sim.converged);
  EXPECT_LE(sim.events, static_cast<long>(sim.generations + 1) * c.num_elements());
}

}  // namespace
}  // namespace mintc::sim
