#include "sim/vcd.h"

#include <gtest/gtest.h>

#include <sstream>

#include "circuits/example1.h"
#include "opt/mlp.h"

namespace mintc::sim {
namespace {

TEST(Vcd, WellFormedDocument) {
  const Circuit c = circuits::example1(80.0);
  const auto r = opt::minimize_cycle_time(c);
  ASSERT_TRUE(r.has_value());
  const std::string vcd = write_vcd(c, r->schedule, r->departure);
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("phi1 $end"), std::string::npos);
  EXPECT_NE(vcd.find("phi2 $end"), std::string::npos);
  for (const Element& e : c.elements()) {
    EXPECT_NE(vcd.find(" " + e.name + " $end"), std::string::npos);
  }
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
}

TEST(Vcd, TimesAreMonotone) {
  const Circuit c = circuits::example1(100.0);
  const auto r = opt::minimize_cycle_time(c);
  ASSERT_TRUE(r.has_value());
  const std::string vcd = write_vcd(c, r->schedule, r->departure);
  long last = -1;
  int stamps = 0;
  std::istringstream lines(vcd);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '#') continue;
    const long t = std::stol(line.substr(1));
    EXPECT_GE(t, last);
    last = t;
    ++stamps;
  }
  EXPECT_GT(stamps, 4);
}

TEST(Vcd, ClockEdgesAtScheduleTimes) {
  // phi2 opens at 80 ns = 80000 ps in cycle 0.
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule sch(110.0, {0.0, 80.0}, {80.0, 30.0});
  const std::string vcd = write_vcd(c, sch, {60.0, 10.0, 10.0, 0.0});
  EXPECT_NE(vcd.find("#80000"), std::string::npos);
  // Cycle boundary at 110 ns appears (phi1 reopens).
  EXPECT_NE(vcd.find("#110000"), std::string::npos);
}

TEST(Vcd, CycleCountControlsLength) {
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule sch(110.0, {0.0, 80.0}, {80.0, 30.0});
  VcdOptions two;
  two.cycles = 2;
  VcdOptions eight;
  eight.cycles = 8;
  const std::string a = write_vcd(c, sch, {0, 0, 0, 0}, two);
  const std::string b = write_vcd(c, sch, {0, 0, 0, 0}, eight);
  EXPECT_GT(b.size(), a.size());
}

}  // namespace
}  // namespace mintc::sim
