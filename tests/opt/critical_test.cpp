#include "opt/critical.h"

#include <gtest/gtest.h>

#include "circuits/example1.h"
#include "circuits/example2.h"
#include "graph/cycle_ratio.h"
#include "opt/mlp.h"

namespace mintc::opt {
namespace {

TEST(LoopAnalysis, Example1SingleLoop) {
  const LoopReport report = analyze_loops(circuits::example1(80.0));
  ASSERT_TRUE(report.complete);
  ASSERT_EQ(report.loops.size(), 1u);
  const LoopInfo& loop = report.loops[0];
  EXPECT_EQ(loop.path_indices.size(), 4u);
  EXPECT_DOUBLE_EQ(loop.delay_sum, 220.0);  // 4*10 dq + 20+20+60+80
  EXPECT_EQ(loop.cycle_span, 2);
  EXPECT_DOUBLE_EQ(loop.implied_tc, 110.0);
}

TEST(LoopAnalysis, TopLoopEqualsCycleRatio) {
  for (const Circuit& c : {circuits::example1(120.0), circuits::example2()}) {
    const LoopReport report = analyze_loops(c);
    ASSERT_TRUE(report.complete);
    ASSERT_FALSE(report.loops.empty());
    const auto ratio = graph::max_cycle_ratio_howard(c.latch_graph());
    ASSERT_TRUE(ratio);
    EXPECT_NEAR(report.loops.front().implied_tc, ratio->ratio, 1e-6) << c.name();
  }
}

TEST(LoopAnalysis, SortedDescending) {
  const LoopReport report = analyze_loops(circuits::example2());
  for (size_t i = 1; i < report.loops.size(); ++i) {
    EXPECT_GE(report.loops[i - 1].implied_tc, report.loops[i].implied_tc - 1e-9);
  }
}

TEST(LoopAnalysis, ToStringMentionsLatches) {
  const LoopReport report = analyze_loops(circuits::example1(80.0));
  const std::string s = report.loops[0].to_string(circuits::example1(80.0));
  EXPECT_NE(s.find("L1"), std::string::npos);
  EXPECT_NE(s.find("Tc >= 110"), std::string::npos);
  EXPECT_NE(s.find("spans 2 cycles"), std::string::npos);
}

TEST(CriticalSegments, Example1LoopCriticalAtOptimum) {
  const Circuit c = circuits::example1(80.0);
  const auto r = minimize_cycle_time(c);
  ASSERT_TRUE(r);
  const CriticalReport rep = find_critical_segments(c, r->schedule, r->departure);
  // The whole feedback loop binds at Δ41 = 80 (loop-average regime): the
  // critical-loop list contains the 4-path ring with implied Tc = 110.
  ASSERT_FALSE(rep.critical_loops.empty());
  EXPECT_NEAR(rep.critical_loops.front().implied_tc, 110.0, 1e-6);
  EXPECT_EQ(rep.critical_loops.front().path_indices.size(), 4u);
}

TEST(CriticalSegments, PathSlacksNonNegativeAtFixpoint) {
  const Circuit c = circuits::example2();
  const auto r = minimize_cycle_time(c);
  ASSERT_TRUE(r);
  const CriticalReport rep = find_critical_segments(c, r->schedule, r->departure);
  ASSERT_EQ(rep.path_slack.size(), static_cast<size_t>(c.num_paths()));
  for (const double s : rep.path_slack) EXPECT_GE(s, -1e-7);
}

TEST(CriticalSegments, Example2HasMultipleDisjointSegments) {
  // The paper's observation: several critical segments, not one path.
  const Circuit c = circuits::example2();
  const auto r = minimize_cycle_time(c);
  ASSERT_TRUE(r);
  const CriticalReport rep = find_critical_segments(c, r->schedule, r->departure);
  EXPECT_GE(rep.tight_paths.size(), 6u);
  EXPECT_GE(rep.critical_loops.size(), 2u);  // P loop and the cross loop
  for (const LoopInfo& loop : rep.critical_loops) {
    EXPECT_NEAR(loop.implied_tc, r->min_cycle, 1e-6);
  }
}

TEST(CriticalSegments, SetupCriticalInFlatRegime) {
  // Δ41 = 0: Tc* = 80 is set by the Lc path span; L4's setup must be tight
  // in a schedule that achieves it.
  const Circuit c = circuits::example1(0.0);
  const ClockSchedule sch(80.0, {0.0, 40.0}, {40.0, 40.0});
  const auto fix = sta::compute_departures(c, sch, std::vector<double>(4, 0.0));
  ASSERT_TRUE(fix.converged);
  const CriticalReport rep = find_critical_segments(c, sch, fix.departure);
  ASSERT_FALSE(rep.setup_critical.empty());
  EXPECT_EQ(c.element(rep.setup_critical.front()).name, "L4");
}

TEST(CriticalSegments, SlackGrowsAwayFromOptimum) {
  // At a relaxed Tc no loop should be critical.
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule relaxed(200.0, {0.0, 120.0}, {120.0, 80.0});
  const auto fix = sta::compute_departures(c, relaxed, std::vector<double>(4, 0.0));
  ASSERT_TRUE(fix.converged);
  const CriticalReport rep = find_critical_segments(c, relaxed, fix.departure);
  EXPECT_TRUE(rep.critical_loops.empty());
}

TEST(CriticalSegments, ReportRendering) {
  const Circuit c = circuits::example1(80.0);
  const auto r = minimize_cycle_time(c);
  ASSERT_TRUE(r);
  const CriticalReport rep = find_critical_segments(c, r->schedule, r->departure);
  const std::string s = rep.to_string(c);
  EXPECT_NE(s.find("critical segments"), std::string::npos);
  EXPECT_NE(s.find("critical loops"), std::string::npos);
  EXPECT_NE(s.find("Ld"), std::string::npos);
}

}  // namespace
}  // namespace mintc::opt
