#include "opt/bounds.h"

#include <gtest/gtest.h>

#include "circuits/appendix_fig1.h"
#include "circuits/example1.h"
#include "circuits/example2.h"
#include "circuits/gaas.h"
#include "circuits/synthetic.h"
#include "opt/mlp.h"

namespace mintc::opt {
namespace {

TEST(Bounds, Example1ComponentsMatchClosedForm) {
  // Fig. 7 closed form: max(80 [Lc span], 20+Δ41 [Ld span], loop avg).
  const Circuit c = circuits::example1(80.0);
  EXPECT_DOUBLE_EQ(path_span_bound(c), 100.0);  // Ld at Δ41 = 80: 10+80+10
  EXPECT_NEAR(loop_bound(c), 110.0, 1e-6);      // (140+80)/2
  EXPECT_NEAR(cycle_time_lower_bound(c), 110.0, 1e-6);
}

TEST(Bounds, FlatRegimeDominatedByPathSpan) {
  const Circuit c = circuits::example1(0.0);
  EXPECT_DOUBLE_EQ(path_span_bound(c), 80.0);  // Lc
  EXPECT_NEAR(loop_bound(c), 70.0, 1e-6);
  EXPECT_NEAR(cycle_time_lower_bound(c), 80.0, 1e-6);
}

TEST(Bounds, TightAcrossTheWholeFig7Sweep) {
  // On example 1 the bound is exact for every Δ41 — the closed form IS the
  // lower bound.
  for (double d41 = 0.0; d41 <= 160.0; d41 += 10.0) {
    const Circuit c = circuits::example1(d41);
    const auto r = minimize_cycle_time(c);
    ASSERT_TRUE(r);
    EXPECT_NEAR(cycle_time_lower_bound(c), r->min_cycle, 1e-5) << d41;
  }
}

TEST(Bounds, NeverExceedsOptimum) {
  std::vector<Circuit> circuits = {circuits::example1(40.0), circuits::example2(),
                                   circuits::gaas_datapath(), circuits::appendix_fig1()};
  circuits::SyntheticParams p;
  for (const uint64_t seed : {21u, 22u, 23u}) {
    circuits.push_back(circuits::synthetic_circuit(p, seed));
  }
  for (const Circuit& c : circuits) {
    const auto r = minimize_cycle_time(c);
    ASSERT_TRUE(r) << c.name();
    EXPECT_LE(cycle_time_lower_bound(c), r->min_cycle + 1e-6) << c.name();
  }
}

TEST(Bounds, SamePhasePathGetsTwoPeriods) {
  Circuit c("self", 1);
  c.add_latch("A", 1, 2.0, 3.0);
  c.add_latch("B", 1, 2.0, 3.0);
  c.add_path("A", "B", 50.0);
  // Same-phase path: token crosses a full boundary, span up to 2 Tc.
  EXPECT_DOUBLE_EQ(path_span_bound(c), 27.5);  // (3+50+2)/2
}

TEST(Bounds, AcyclicCircuitHasZeroLoopBound) {
  Circuit c("pipe", 2);
  c.add_latch("A", 1, 1.0, 2.0);
  c.add_latch("B", 2, 1.0, 2.0);
  c.add_path("A", "B", 10.0);
  EXPECT_DOUBLE_EQ(loop_bound(c), 0.0);
  EXPECT_GT(path_span_bound(c), 0.0);
}

TEST(Bounds, FlipFlopPathsExcludedFromSpan) {
  Circuit c("ff", 2);
  c.add_latch("L", 1, 1.0, 2.0);
  c.add_flipflop("F", 2, 1.0, 2.0);
  c.add_path("L", "F", 100.0);
  // FF destinations are pinned differently; the latch-to-latch span
  // argument does not apply.
  EXPECT_DOUBLE_EQ(path_span_bound(c), 0.0);
}

}  // namespace
}  // namespace mintc::opt
