#include "opt/sensitivity.h"

#include <gtest/gtest.h>

#include "circuits/example1.h"
#include "circuits/gaas.h"
#include "opt/mlp.h"

namespace mintc::opt {
namespace {

TEST(Sensitivity, Fig7SlopesFromDuals) {
  // Example 1: dTc*/dΔ41 is the Fig. 7 slope at the operating point:
  // 1/2 in the borrowing regime, 1 beyond Δ41 = 100, 0 below Δ41 = 20.
  const int ld = circuits::example1_ld_path();
  {
    const auto s = delay_sensitivities(circuits::example1(60.0));
    ASSERT_TRUE(s);
    EXPECT_NEAR(s->dtc_ddelay[static_cast<size_t>(ld)], 0.5, 1e-6);
  }
  {
    const auto s = delay_sensitivities(circuits::example1(120.0));
    ASSERT_TRUE(s);
    EXPECT_NEAR(s->dtc_ddelay[static_cast<size_t>(ld)], 1.0, 1e-6);
  }
  {
    const auto s = delay_sensitivities(circuits::example1(10.0));
    ASSERT_TRUE(s);
    EXPECT_NEAR(s->dtc_ddelay[static_cast<size_t>(ld)], 0.0, 1e-6);
  }
}

TEST(Sensitivity, MatchesFiniteDifferences) {
  // Central finite differences across every path of example 1 at a
  // non-degenerate point.
  const Circuit base = circuits::example1(80.0);
  const auto s = delay_sensitivities(base);
  ASSERT_TRUE(s);
  const double h = 0.5;
  for (int p = 0; p < base.num_paths(); ++p) {
    Circuit up = base;
    up.set_path_delay(p, base.path(p).delay + h);
    Circuit dn = base;
    dn.set_path_delay(p, base.path(p).delay - h);
    const auto ru = minimize_cycle_time(up);
    const auto rd = minimize_cycle_time(dn);
    ASSERT_TRUE(ru && rd);
    const double fd = (ru->min_cycle - rd->min_cycle) / (2.0 * h);
    EXPECT_NEAR(s->dtc_ddelay[static_cast<size_t>(p)], fd, 1e-6) << "path " << p;
  }
}

TEST(Sensitivity, BoundsAndCriticality) {
  const Circuit c = circuits::gaas_datapath();
  const auto s = delay_sensitivities(c);
  ASSERT_TRUE(s);
  EXPECT_NEAR(s->min_cycle, 4.4, 1e-6);
  int critical = 0;
  for (const double v : s->dtc_ddelay) {
    EXPECT_GE(v, -1e-7);
    EXPECT_LE(v, 1.0 + 1e-7);
    if (v > 1e-6) ++critical;
  }
  // Only the critical loop's paths carry nonzero price.
  EXPECT_GE(critical, 3);
  EXPECT_LT(critical, c.num_paths() / 2);
}

TEST(Sensitivity, InvalidCircuitRejected) {
  Circuit c("bad", 1);
  c.add_latch("X", 9, 1.0, 2.0);
  const auto s = delay_sensitivities(c);
  ASSERT_FALSE(s);
  EXPECT_EQ(s.error().kind, ErrorKind::kInvalidCircuit);
}

TEST(Sensitivity, DelayRowMappingComplete) {
  const Circuit c = circuits::gaas_datapath();
  const GeneratedLp g = generate_lp(c);
  ASSERT_EQ(g.delay_row_of_path.size(), static_cast<size_t>(c.num_paths()));
  for (int p = 0; p < c.num_paths(); ++p) {
    const int row = g.delay_row_of_path[static_cast<size_t>(p)];
    ASSERT_GE(row, 0) << "path " << p;
    // The row's RHS must contain the path's delay contribution.
    const CombPath& path = c.path(p);
    const double rhs = g.model.row(row).rhs;
    if (c.element(path.to).is_latch()) {
      EXPECT_NEAR(rhs, c.element(path.from).dq + path.delay, 1e-9);
    } else {
      EXPECT_NEAR(rhs, -(c.element(path.from).dq + path.delay + c.element(path.to).setup),
                  1e-9);
    }
  }
}

}  // namespace
}  // namespace mintc::opt
