// Warm-start layer tests: simplex basis reuse, the graph solver's Tc-hint
// bracket, and the CycleTimeSession loops that sensitivity/parametric
// sweeps ride on. Warm results must agree with cold ones — exactly where
// the engine is exact (simplex optimum), within tolerance where it is
// tolerance-bound by construction (binary search).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "circuits/example1.h"
#include "circuits/gaas.h"
#include "lp/simplex.h"
#include "opt/constraints.h"
#include "opt/graph_solver.h"
#include "opt/mlp.h"
#include "opt/parametric.h"
#include "opt/sensitivity.h"
#include "opt/session.h"

namespace mintc::opt {
namespace {

TEST(SimplexWarmStart, ReinstalledBasisSkipsPhaseOneAndMatches) {
  const Circuit circuit = circuits::gaas_datapath();
  const GeneratedLp gen = generate_lp(circuit);
  const lp::SimplexSolver solver;
  const lp::Solution cold = solver.solve(gen.model);
  ASSERT_TRUE(cold.optimal());
  ASSERT_FALSE(cold.basis.empty());

  // Re-solve the SAME model from its own optimal basis: phase 1 skipped,
  // zero phase-2 pivots, identical optimum.
  const lp::Solution warm = solver.solve(gen.model, &cold.basis);
  ASSERT_TRUE(warm.optimal());
  EXPECT_TRUE(warm.stats.warm_started);
  EXPECT_FALSE(warm.stats.warm_rejected);
  EXPECT_EQ(warm.stats.phase1_pivots, 0);
  EXPECT_EQ(warm.stats.phase2_pivots, 0);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  for (size_t j = 0; j < cold.x.size(); ++j) EXPECT_NEAR(warm.x[j], cold.x[j], 1e-9);
}

TEST(SimplexWarmStart, PerturbedModelReoptimizesToColdOptimum) {
  const Circuit circuit = circuits::gaas_datapath();
  const lp::SimplexSolver solver;
  const lp::Solution first = solver.solve(generate_lp(circuit).model);
  ASSERT_TRUE(first.optimal());

  Circuit bumped = circuit;
  bumped.set_path_delay(0, circuit.path(0).delay * 1.1);
  const lp::Model model = generate_lp(bumped).model;
  const lp::Solution cold = solver.solve(model);
  const lp::Solution warm = solver.solve(model, &first.basis);
  ASSERT_TRUE(cold.optimal());
  ASSERT_TRUE(warm.optimal());
  // Same LP, so the optima agree regardless of which vertex each run ends
  // on; a warm start must never change the optimal value.
  EXPECT_NEAR(warm.objective, cold.objective, 1e-7);
  EXPECT_LE(warm.stats.phase1_pivots + warm.stats.phase2_pivots,
            cold.stats.phase1_pivots + cold.stats.phase2_pivots);
}

TEST(SimplexWarmStart, DefectiveHintsFallBackCold) {
  const Circuit circuit = circuits::example1(80.0);
  const lp::Model model = generate_lp(circuit).model;
  const lp::SimplexSolver solver;
  const lp::Solution cold = solver.solve(model);
  ASSERT_TRUE(cold.optimal());

  // Wrong size, out-of-range, and duplicated columns must all be rejected
  // and produce the cold answer anyway.
  for (const std::vector<int> bad :
       {std::vector<int>{0}, std::vector<int>{-1, 0, 1}, std::vector<int>(cold.basis.size(), 0),
        [&] {
          std::vector<int> b = cold.basis;
          b[0] = 1 << 28;
          return b;
        }()}) {
    const lp::Solution sol = solver.solve(model, &bad);
    ASSERT_TRUE(sol.optimal());
    EXPECT_TRUE(sol.stats.warm_rejected);
    EXPECT_FALSE(sol.stats.warm_started);
    EXPECT_NEAR(sol.objective, cold.objective, 1e-9);
  }
}

TEST(GraphWarmStart, TcHintShrinksBracketAndAgrees) {
  const Circuit circuit = circuits::gaas_datapath();
  const auto cold = minimize_cycle_time_graph(circuit);
  ASSERT_TRUE(cold);

  GraphSolveOptions warm_opts;
  warm_opts.tc_hint = cold->min_cycle;
  const auto warm = minimize_cycle_time_graph(circuit, warm_opts);
  ASSERT_TRUE(warm);
  EXPECT_NEAR(warm->min_cycle, cold->min_cycle, 2.0 * warm_opts.tol);
  EXPECT_LE(warm->search_steps, cold->search_steps);
}

TEST(GraphWarmStart, StaleHintStillFindsTheOptimum) {
  const Circuit circuit = circuits::gaas_datapath();
  const auto cold = minimize_cycle_time_graph(circuit);
  ASSERT_TRUE(cold);
  for (const double factor : {0.2, 5.0}) {  // hint far below / far above Tc*
    GraphSolveOptions opts;
    opts.tc_hint = cold->min_cycle * factor;
    const auto warm = minimize_cycle_time_graph(circuit, opts);
    ASSERT_TRUE(warm) << "factor " << factor;
    EXPECT_NEAR(warm->min_cycle, cold->min_cycle, 2.0 * opts.tol) << "factor " << factor;
  }
}

TEST(CycleTimeSession, WarmMinimizeMatchesFreshAcrossPerturbations) {
  const Circuit circuit = circuits::gaas_datapath();
  CycleTimeSession session(circuit);
  const auto first = session.minimize();
  ASSERT_TRUE(first);

  Circuit scratch = circuit;
  for (int step = 1; step <= 4; ++step) {
    const int p = step % circuit.num_paths();
    const double delay = circuit.path(p).delay * (1.0 + 0.05 * step);
    session.set_path_delay(p, delay);
    scratch.set_path_delay(p, delay);
    const auto warm = session.minimize();
    const auto fresh = minimize_cycle_time(scratch);
    ASSERT_TRUE(warm) << "step " << step;
    ASSERT_TRUE(fresh) << "step " << step;
    EXPECT_NEAR(warm->min_cycle, fresh->min_cycle, 1e-7) << "step " << step;
    EXPECT_TRUE(satisfies_p1(scratch, warm->schedule, warm->departure)) << "step " << step;
  }
  EXPECT_EQ(session.counters().lp_solves, 5);
  // Same-shaped LPs: the cached basis installs every time after the first.
  EXPECT_GE(session.counters().warm_lp_starts, 3);
}

TEST(CycleTimeSession, WarmGraphSolveTracksPerturbations) {
  const Circuit circuit = circuits::gaas_datapath();
  CycleTimeSession session(circuit);
  ASSERT_TRUE(session.minimize_graph());
  EXPECT_EQ(session.counters().warm_brackets, 0);  // nothing cached yet

  session.set_path_delay(0, circuit.path(0).delay * 1.05);
  Circuit scratch = circuit;
  scratch.set_path_delay(0, circuit.path(0).delay * 1.05);
  const auto warm = session.minimize_graph();
  const auto fresh = minimize_cycle_time_graph(scratch);
  ASSERT_TRUE(warm);
  ASSERT_TRUE(fresh);
  EXPECT_NEAR(warm->min_cycle, fresh->min_cycle, 2e-7);
  EXPECT_EQ(session.counters().warm_brackets, 1);
}

TEST(CycleTimeSession, SessionSensitivitiesMatchOneShot) {
  const Circuit circuit = circuits::gaas_datapath();
  CycleTimeSession session(circuit);
  ASSERT_TRUE(session.minimize());  // prime the basis

  session.set_path_delay(2, circuit.path(2).delay + 0.4);
  Circuit scratch = circuit;
  scratch.set_path_delay(2, circuit.path(2).delay + 0.4);
  const auto warm = session.sensitivities();
  const auto fresh = delay_sensitivities(scratch);
  ASSERT_TRUE(warm);
  ASSERT_TRUE(fresh);
  EXPECT_NEAR(warm->min_cycle, fresh->min_cycle, 1e-7);
  ASSERT_EQ(warm->dtc_ddelay.size(), fresh->dtc_ddelay.size());
  // Degenerate optima can pick different subgradients from different bases;
  // on the GaAs circuit the optimum is unique enough that the duals agree.
  for (size_t p = 0; p < fresh->dtc_ddelay.size(); ++p) {
    EXPECT_NEAR(warm->dtc_ddelay[p], fresh->dtc_ddelay[p], 1e-6) << "path " << p;
  }
}

TEST(ParametricSweep, ChainedBasisMatchesPerSampleColdSolves) {
  const Circuit circuit = circuits::example1(0.0);
  // Sweep Δ41 like the paper's Fig. 7; the warm (basis-chained) sweep must
  // trace the same piecewise-linear curve as per-θ cold solves.
  const int path = circuits::example1_ld_path();
  const double lo = 0.0, hi = 160.0;
  const int samples = 23;
  const lp::ParametricResult swept = sweep_path_delay(circuit, path, lo, hi, samples);
  ASSERT_EQ(swept.points.size(), static_cast<size_t>(samples));

  const lp::SimplexSolver solver;
  for (const lp::ParametricPoint& pt : swept.points) {
    Circuit c = circuit;
    c.set_path_delay(path, pt.theta);
    const lp::Solution cold = solver.solve(generate_lp(c).model);
    ASSERT_EQ(pt.status, cold.status) << "theta " << pt.theta;
    if (cold.optimal()) {
      EXPECT_NEAR(pt.objective, cold.objective, 1e-7) << "theta " << pt.theta;
    }
  }
}

}  // namespace
}  // namespace mintc::opt
