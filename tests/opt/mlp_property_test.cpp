// Parameterized property tests for Algorithm MLP over synthetic circuits.
//
// Invariants checked on every (params, seed) instance (DESIGN.md §5):
//   1. Theorem 1: the slid solution satisfies P1 exactly.
//   2. The analysis engine confirms the designed schedule (checkTc PASS).
//   3. Tc* >= maximum cycle ratio of the latch graph (independent bound,
//      computed by two unrelated algorithms).
//   4. Shrinking the schedule by 2% breaks feasibility (local optimality).
//   5. Constraint-count formula: rows grow as predicted by Section IV.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/synthetic.h"
#include "graph/cycle_ratio.h"
#include "opt/mlp.h"
#include "sta/analysis.h"

namespace mintc::opt {
namespace {

struct Config {
  circuits::SyntheticParams params;
  uint64_t seed = 0;
};

class MlpPropertyTest : public testing::TestWithParam<Config> {};

TEST_P(MlpPropertyTest, TheoremOneAndCertificates) {
  const Config& cfg = GetParam();
  const Circuit c = circuits::synthetic_circuit(cfg.params, cfg.seed);
  ASSERT_TRUE(c.validate().empty());

  const auto r = minimize_cycle_time(c);
  ASSERT_TRUE(r) << r.error().to_string();
  EXPECT_GT(r->min_cycle, 0.0);

  // (1) P1 feasibility of the slid point.
  EXPECT_TRUE(satisfies_p1(c, r->schedule, r->departure, 1e-5));

  // (2) checkTc agreement.
  const sta::TimingReport rep = sta::check_schedule(c, r->schedule);
  EXPECT_TRUE(rep.feasible);

  // (3) cycle-ratio lower bound via two independent algorithms.
  const auto lawler = graph::max_cycle_ratio_lawler(c.latch_graph());
  const auto howard = graph::max_cycle_ratio_howard(c.latch_graph());
  if (lawler) {
    EXPECT_GE(r->min_cycle, lawler->ratio - 1e-5);
  }
  if (howard) {
    EXPECT_GE(r->min_cycle, howard->ratio - 1e-5);
  }

  // (4) local optimality: 2% tighter is infeasible.
  EXPECT_FALSE(sta::check_schedule(c, r->schedule.scaled(0.98)).feasible);

  // (5) row accounting matches the generator's own counts and stays inside
  // the paper's bound (plus the bounds rows we track separately).
  const GeneratedLp g = generate_lp(c);
  EXPECT_EQ(g.model.num_rows(), g.counts.rows());
  EXPECT_EQ(r->counts.rows(), g.counts.rows());
  const int k = c.num_phases();
  const int l = c.num_elements();
  const int f = c.max_fanin();
  EXPECT_LE(g.counts.rows(), 3 * k - 1 + k * k + (f + 1) * l);
}

TEST_P(MlpPropertyTest, UpdateSchemesConverge) {
  const Config& cfg = GetParam();
  const Circuit c = circuits::synthetic_circuit(cfg.params, cfg.seed);
  double reference = -1.0;
  for (const auto scheme : {sta::UpdateScheme::kJacobi, sta::UpdateScheme::kGaussSeidel,
                            sta::UpdateScheme::kEventDriven}) {
    MlpOptions opt;
    opt.fixpoint.scheme = scheme;
    const auto r = minimize_cycle_time(c, opt);
    ASSERT_TRUE(r);
    if (reference < 0.0) reference = r->min_cycle;
    EXPECT_NEAR(r->min_cycle, reference, 1e-6);
    EXPECT_TRUE(satisfies_p1(c, r->schedule, r->departure, 1e-5));
  }
}

std::vector<Config> make_configs() {
  std::vector<Config> configs;
  // Two-phase pipelines of several sizes.
  for (const uint64_t seed : {1u, 2u, 3u}) {
    Config c;
    c.params.num_phases = 2;
    c.params.num_stages = 6;
    c.params.latches_per_stage = 3;
    c.seed = seed;
    configs.push_back(c);
  }
  // Three- and four-phase circuits.
  for (const int k : {3, 4}) {
    for (const uint64_t seed : {10u, 11u}) {
      Config c;
      c.params.num_phases = k;
      c.params.num_stages = 2 * k;
      c.params.latches_per_stage = 2;
      c.params.fanin = 2;
      c.seed = seed;
      configs.push_back(c);
    }
  }
  // A wider, denser instance.
  {
    Config c;
    c.params.num_phases = 2;
    c.params.num_stages = 10;
    c.params.latches_per_stage = 5;
    c.params.fanin = 4;
    c.params.extra_long_edges = 8;
    c.seed = 77;
    configs.push_back(c);
  }
  // Skewed-delay instances (heavy spread stresses the fixpoint and bounds).
  for (const uint64_t seed : {301u, 302u}) {
    Config c;
    c.params.num_phases = 3;
    c.params.num_stages = 6;
    c.params.latches_per_stage = 2;
    c.params.min_delay = 1.0;
    c.params.max_delay = 120.0;
    c.seed = seed;
    configs.push_back(c);
  }
  // A single-phase design (every path crosses the full cycle).
  {
    Config c;
    c.params.num_phases = 1;
    c.params.num_stages = 4;
    c.params.latches_per_stage = 3;
    c.seed = 55;
    configs.push_back(c);
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(Synthetic, MlpPropertyTest, testing::ValuesIn(make_configs()),
                         [](const testing::TestParamInfo<Config>& param_info) {
                           const Config& c = param_info.param;
                           return "k" + std::to_string(c.params.num_phases) + "s" +
                                  std::to_string(c.params.num_stages) + "l" +
                                  std::to_string(c.params.latches_per_stage) + "seed" +
                                  std::to_string(c.seed);
                         });

}  // namespace
}  // namespace mintc::opt
