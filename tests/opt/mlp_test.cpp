#include "opt/mlp.h"

#include <gtest/gtest.h>

#include "circuits/example1.h"
#include "sta/analysis.h"

namespace mintc::opt {
namespace {

TEST(Mlp, Example1PublishedOptima) {
  // Fig. 6: Δ41 = 80/100/120 -> Tc* = 110/120/140.
  const double cases[][2] = {{80.0, 110.0}, {100.0, 120.0}, {120.0, 140.0}};
  for (const auto& [d41, tc] : cases) {
    const auto r = minimize_cycle_time(circuits::example1(d41));
    ASSERT_TRUE(r) << r.error().to_string();
    EXPECT_NEAR(r->min_cycle, tc, 1e-6) << "delta41=" << d41;
  }
}

TEST(Mlp, Example1ClosedFormAcrossRange) {
  for (double d41 = 0.0; d41 <= 160.0; d41 += 10.0) {
    const auto r = minimize_cycle_time(circuits::example1(d41));
    ASSERT_TRUE(r);
    EXPECT_NEAR(r->min_cycle, circuits::example1_optimal_tc(d41), 1e-6) << "d41=" << d41;
  }
}

TEST(Mlp, SolutionSatisfiesP1) {
  // Theorem 1: the slid solution satisfies the *nonlinear* constraints.
  const auto r = minimize_cycle_time(circuits::example1(80.0));
  ASSERT_TRUE(r);
  const Circuit c = circuits::example1(80.0);
  EXPECT_TRUE(satisfies_p1(c, r->schedule, r->departure));
  // The raw LP departures generally do NOT (they may float above the max).
  // They must at least satisfy the relaxed constraints, i.e. be >= the slid
  // values.
  for (size_t i = 0; i < r->departure.size(); ++i) {
    EXPECT_GE(r->lp_departure[i], r->departure[i] - 1e-7);
  }
}

TEST(Mlp, FixpointNeverIncreasesCycleTime) {
  // The fixpoint step only moves departures; Tc stays the LP optimum.
  const auto r = minimize_cycle_time(circuits::example1(120.0));
  ASSERT_TRUE(r);
  EXPECT_NEAR(r->schedule.cycle, r->min_cycle, 1e-9);
}

TEST(Mlp, AnalysisConfirmsDesign) {
  // Design -> analyze must round-trip: the optimal schedule passes checkTc.
  const auto r = minimize_cycle_time(circuits::example1(100.0));
  ASSERT_TRUE(r);
  const Circuit c = circuits::example1(100.0);
  const sta::TimingReport rep = sta::check_schedule(c, r->schedule);
  EXPECT_TRUE(rep.feasible);
}

TEST(Mlp, OptimalityCertificate) {
  // Shrinking Tc below the optimum must be infeasible: scale the schedule
  // down 1% and re-analyze.
  const auto r = minimize_cycle_time(circuits::example1(80.0));
  ASSERT_TRUE(r);
  const Circuit c = circuits::example1(80.0);
  const sta::TimingReport rep = sta::check_schedule(c, r->schedule.scaled(0.99));
  EXPECT_FALSE(rep.feasible);
}

TEST(Mlp, CriticalConstraintsNonEmptyAndNamed) {
  const auto r = minimize_cycle_time(circuits::example1(80.0));
  ASSERT_TRUE(r);
  ASSERT_FALSE(r->critical.empty());
  for (const TightConstraint& t : r->critical) {
    EXPECT_FALSE(t.name.empty());
    EXPECT_NEAR(t.slack, 0.0, 1e-6);
    EXPECT_GT(std::abs(t.dual), 1e-7);
  }
}

TEST(Mlp, DualsSumOnCriticalLoop) {
  // For Δ41 in the loop-average regime, dTc*/dΔ41 = 1/2 (Fig. 7): the dual
  // of the Ld propagation row must be 0.5.
  const auto r = minimize_cycle_time(circuits::example1(80.0));
  ASSERT_TRUE(r);
  double ld_dual = 0.0;
  for (const TightConstraint& t : r->critical) {
    if (t.name == "L2R:L4->L1") ld_dual = t.dual;
  }
  EXPECT_NEAR(ld_dual, 0.5, 1e-6);
}

TEST(Mlp, InvalidCircuitRejected) {
  Circuit c("bad", 2);
  c.add_latch("X", 5, 1.0, 2.0);  // phase out of range
  const auto r = minimize_cycle_time(c);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().kind, ErrorKind::kInvalidCircuit);
}

TEST(Mlp, InfeasibleHoldConstraintsReported) {
  // A hold requirement no cycle time can meet: for a same-phase pair the
  // hold row degenerates to -T_1 >= hold - delta (the (1-C)*Tc term
  // vanishes and the s terms cancel), impossible for hold > delta.
  Circuit c("infeasible", 1);
  c.add_latch("A", 1, 1.0, 2.0);
  Element b;
  b.name = "B";
  b.phase = 1;
  b.setup = 1.0;
  b.dq = 2.0;
  b.hold = 1e6;
  c.add_element(b);
  c.add_path("A", "B", 10.0, 0.0);
  MlpOptions opt;
  opt.generator.hold_constraints = true;
  const auto r = minimize_cycle_time(c, opt);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().kind, ErrorKind::kInfeasible);
}

TEST(Mlp, SingleLatchSelfLoop) {
  // One latch feeding itself through combinational logic: one-phase clock,
  // the loop crosses one boundary, so Tc* = dq + delay (setup permitting).
  Circuit c("self", 1);
  c.add_latch("A", 1, 2.0, 3.0);
  c.add_path("A", "A", 10.0);
  const auto r = minimize_cycle_time(c);
  ASSERT_TRUE(r);
  EXPECT_NEAR(r->min_cycle, 13.0, 1e-6);
}

TEST(Mlp, EmptyCircuitOptimalAtZero) {
  Circuit c("empty", 1);
  const auto r = minimize_cycle_time(c);
  ASSERT_TRUE(r);
  EXPECT_NEAR(r->min_cycle, 0.0, 1e-9);
}

TEST(Mlp, PipelineWithoutFeedback) {
  // Pure pipeline A -> B: Tc bounded by the single-period path span.
  Circuit c("pipe", 2);
  c.add_latch("A", 1, 1.0, 2.0);
  c.add_latch("B", 2, 1.0, 2.0);
  c.add_path("A", "B", 10.0);
  const auto r = minimize_cycle_time(c);
  ASSERT_TRUE(r);
  // Path must fit: dq + delay + setup = 13 within one period (C3 makes the
  // phi2 end at most Tc after phi1 start... here only K12 exists so the
  // bound comes from periodicity: s2+T2 <= ... ). At minimum the LP yields
  // a feasible positive Tc; check P1 feasibility and optimality cert.
  EXPECT_GT(r->min_cycle, 0.0);
  EXPECT_TRUE(satisfies_p1(c, r->schedule, r->departure));
  const sta::TimingReport down = sta::check_schedule(c, r->schedule.scaled(0.98));
  EXPECT_FALSE(down.feasible);
}

TEST(Mlp, FixpointIterationsSmall) {
  // Paper: "the update process usually terminated in two to three
  // iterations (in some cases no iterations were even necessary)".
  const auto r = minimize_cycle_time(circuits::example1(80.0));
  ASSERT_TRUE(r);
  EXPECT_LE(r->fixpoint_sweeps, 6);
}

TEST(Mlp, UpdateSchemesAgree) {
  for (const auto scheme : {sta::UpdateScheme::kJacobi, sta::UpdateScheme::kGaussSeidel,
                            sta::UpdateScheme::kEventDriven}) {
    MlpOptions opt;
    opt.fixpoint.scheme = scheme;
    const auto r = minimize_cycle_time(circuits::example1(120.0), opt);
    ASSERT_TRUE(r);
    EXPECT_NEAR(r->min_cycle, 140.0, 1e-6);
    const Circuit c = circuits::example1(120.0);
    EXPECT_TRUE(satisfies_p1(c, r->schedule, r->departure));
  }
}

TEST(Mlp, WarmStartBoundDoesNotChangeOptimum) {
  // Adding a Tc upper bound from a baseline (the paper's "good initial
  // guess" idea) must not change the optimal value.
  MlpOptions opt;
  opt.generator.tc_upper_bound = 200.0;
  const auto r = minimize_cycle_time(circuits::example1(80.0), opt);
  ASSERT_TRUE(r);
  EXPECT_NEAR(r->min_cycle, 110.0, 1e-6);
}

TEST(Mlp, ArrivalBasedSetupCanUnderestimate) {
  // The paper warns eq. (10) "may sometimes be satisfiable by a clock phase
  // whose width is 0": the arrival-based variant can only do better or
  // equal (it is weaker).
  MlpOptions loose;
  loose.generator.arrival_based_setup = true;
  const auto a = minimize_cycle_time(circuits::example1(80.0), loose);
  const auto b = minimize_cycle_time(circuits::example1(80.0));
  ASSERT_TRUE(a && b);
  EXPECT_LE(a->min_cycle, b->min_cycle + 1e-9);
}

}  // namespace
}  // namespace mintc::opt
