#include "opt/constraints.h"

#include <gtest/gtest.h>

#include "circuits/example1.h"
#include "circuits/gaas.h"

namespace mintc::opt {
namespace {

TEST(Constraints, Example1RowInventory) {
  // Example 1 (Section V): k=2, l=4, 4 paths. The paper lists:
  //   periodicity (4), ordering (1), nonoverlap (2), setup (4),
  //   propagation (4) -> 15 rows; nonnegativity via bounds (2k+1+l = 9).
  const GeneratedLp g = generate_lp(circuits::example1(80.0));
  EXPECT_EQ(g.counts.c1, 4);
  EXPECT_EQ(g.counts.c2, 1);
  EXPECT_EQ(g.counts.c3, 2);
  EXPECT_EQ(g.counts.l1, 4);
  EXPECT_EQ(g.counts.l2r, 4);
  EXPECT_EQ(g.counts.rows(), 15);
  EXPECT_EQ(g.counts.bounds, 9);
  EXPECT_EQ(g.model.num_rows(), 15);
  EXPECT_EQ(g.model.num_variables(), 9);  // Tc, s1, s2, T1, T2, D1..D4
}

TEST(Constraints, RowCountBoundFromPaper) {
  // Section IV: "the number of constraints is bounded from above by
  // 4k + (F+1)l". Our row set stays within it (including bounds).
  const Circuit c = circuits::example1(80.0);
  const GeneratedLp g = generate_lp(c);
  const int k = c.num_phases();
  const int l = c.num_elements();
  const int f = c.max_fanin();
  // Example 1 has only 2 nonoverlap pairs, so the paper's bound holds as
  // stated here (see paper_results_test for the general k^2 version).
  EXPECT_LE(g.counts.rows() + l, 4 * k + (f + 1) * l + (2 * k + 1));
}

TEST(Constraints, Example1NonoverlapRowsMatchPaper) {
  // "s1 >= s2 + T2 - Tc and s2 >= s1 + T1".
  const GeneratedLp g = generate_lp(circuits::example1(80.0));
  bool found_12 = false;
  bool found_21 = false;
  for (const lp::Row& row : g.model.rows()) {
    if (row.name == "C3:phi1/phi2") found_12 = true;
    if (row.name == "C3:phi2/phi1") found_21 = true;
  }
  EXPECT_TRUE(found_12);
  EXPECT_TRUE(found_21);
}

TEST(Constraints, L2RRowEncodesShiftOperator) {
  // For path L4(phi2) -> L1(phi1): D1 >= D4 + 10 + Δ41 + s2 - s1 - Tc,
  // i.e. row D1 - D4 - s2 + s1 + Tc >= 10 + Δ41.
  const GeneratedLp g = generate_lp(circuits::example1(80.0));
  const lp::Row* target = nullptr;
  for (const lp::Row& row : g.model.rows()) {
    if (row.name == "L2R:L4->L1") target = &row;
  }
  ASSERT_NE(target, nullptr);
  EXPECT_DOUBLE_EQ(target->rhs, 90.0);  // Δ_DQ4 + Δ41 = 10 + 80
  // Check the coefficient on Tc is +1 (C_21 = 1).
  double tc_coeff = 0.0;
  for (const lp::LinearTerm& t : target->terms) {
    if (t.var == g.vars.tc) tc_coeff = t.coeff;
  }
  EXPECT_DOUBLE_EQ(tc_coeff, 1.0);
}

TEST(Constraints, SetupRowEncodesEq16) {
  // D_i + Δ_DCi <= T_pi  ->  D_i - T_pi <= -Δ_DCi.
  const GeneratedLp g = generate_lp(circuits::example1(80.0));
  const lp::Row* target = nullptr;
  for (const lp::Row& row : g.model.rows()) {
    if (row.name == "L1:setup(L1)") target = &row;
  }
  ASSERT_NE(target, nullptr);
  EXPECT_EQ(target->sense, lp::Sense::kLe);
  EXPECT_DOUBLE_EQ(target->rhs, -10.0);
}

TEST(Constraints, DisableNonoverlapDropsC3) {
  GeneratorOptions opt;
  opt.enforce_nonoverlap = false;
  const GeneratedLp g = generate_lp(circuits::example1(80.0), opt);
  EXPECT_EQ(g.counts.c3, 0);
}

TEST(Constraints, MinPhaseWidthExtension) {
  GeneratorOptions opt;
  opt.min_phase_width = 5.0;
  const GeneratedLp g = generate_lp(circuits::example1(80.0), opt);
  EXPECT_EQ(g.counts.ext, 2);  // one per phase
}

TEST(Constraints, TcUpperBoundExtension) {
  GeneratorOptions opt;
  opt.tc_upper_bound = 500.0;
  const GeneratedLp g = generate_lp(circuits::example1(80.0), opt);
  EXPECT_EQ(g.counts.ext, 1);
}

TEST(Constraints, ArrivalBasedSetupUsesFaninRows) {
  GeneratorOptions opt;
  opt.arrival_based_setup = true;
  const GeneratedLp g = generate_lp(circuits::example1(80.0), opt);
  // Each latch has exactly one fanin in example 1 -> still 4 setup rows,
  // but named L1A and carrying source terms.
  EXPECT_EQ(g.counts.l1, 4);
  bool found = false;
  for (const lp::Row& row : g.model.rows()) {
    found |= row.name.find("L1A:setup") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Constraints, HoldRowsPerFaninWhenEnabled) {
  Circuit c("h", 2);
  c.add_latch("A", 1, 1.0, 2.0);
  Element b;
  b.name = "B";
  b.phase = 2;
  b.setup = 1.0;
  b.dq = 2.0;
  b.hold = 0.5;
  c.add_element(b);
  c.add_path("A", "B", 10.0, 3.0);
  c.add_path("B", "A", 10.0, 3.0);

  GeneratorOptions opt;
  opt.hold_constraints = true;
  const GeneratedLp g = generate_lp(c, opt);
  // One row per fanin path of every latch: even hold = 0 elements get the
  // transparency-race guard (next token must not reach an open latch).
  EXPECT_EQ(g.counts.hold, 2);
  // Off by default.
  EXPECT_EQ(generate_lp(c).counts.hold, 0);
}

TEST(Constraints, FlipFlopRows) {
  Circuit c("ff", 2);
  c.add_latch("L", 1, 1.0, 2.0);
  c.add_flipflop("F", 2, 1.0, 2.0);
  c.add_path("L", "F", 10.0);
  c.add_path("F", "L", 10.0);
  const GeneratedLp g = generate_lp(c);
  EXPECT_EQ(g.counts.ff_pin, 1);
  EXPECT_EQ(g.counts.ff_setup, 1);
  EXPECT_EQ(g.counts.l1, 1);   // just the latch
  EXPECT_EQ(g.counts.l2r, 1);  // only the path INTO the latch
  EXPECT_EQ(g.counts.c3, 0);   // FF endpoints exempt
}

TEST(Constraints, GaasHits91Constraints) {
  // Section V: "The number of constraints for this example was 91."
  const GeneratedLp g = generate_lp(circuits::gaas_datapath());
  EXPECT_EQ(g.counts.rows(), 91);
  EXPECT_EQ(g.model.num_rows(), 91);
}

TEST(Constraints, ScheduleExtraction) {
  const GeneratedLp g = generate_lp(circuits::example1(80.0));
  std::vector<double> x(static_cast<size_t>(g.model.num_variables()), 0.0);
  x[static_cast<size_t>(g.vars.tc)] = 110.0;
  x[static_cast<size_t>(g.vars.s[1])] = 80.0;
  x[static_cast<size_t>(g.vars.T[0])] = 80.0;
  x[static_cast<size_t>(g.vars.D[2])] = 7.0;
  const ClockSchedule sch = schedule_from_solution(g.vars, x);
  EXPECT_DOUBLE_EQ(sch.cycle, 110.0);
  EXPECT_DOUBLE_EQ(sch.s(2), 80.0);
  EXPECT_DOUBLE_EQ(sch.T(1), 80.0);
  const std::vector<double> d = departures_from_solution(g.vars, x);
  EXPECT_DOUBLE_EQ(d[2], 7.0);
}

}  // namespace
}  // namespace mintc::opt
