#include <gtest/gtest.h>

#include "circuits/example1.h"
#include "opt/mlp.h"
#include "sta/analysis.h"

namespace mintc::opt {
namespace {

TEST(Refine, KeepsOptimalCycleTime) {
  const Circuit c = circuits::example1(80.0);
  const auto base = minimize_cycle_time(c);
  ASSERT_TRUE(base);
  for (const auto obj :
       {SecondaryObjective::kMinTotalWidth, SecondaryObjective::kMaxTotalWidth,
        SecondaryObjective::kMinPhaseStarts, SecondaryObjective::kMaxPhaseStarts}) {
    const auto r = refine_schedule(c, base->min_cycle, obj);
    ASSERT_TRUE(r) << to_string(obj);
    EXPECT_NEAR(r->schedule.cycle, base->min_cycle, 1e-6) << to_string(obj);
    EXPECT_TRUE(satisfies_p1(c, r->schedule, r->departure)) << to_string(obj);
    EXPECT_TRUE(sta::check_schedule(c, r->schedule).feasible) << to_string(obj);
  }
}

TEST(Refine, MinWidthIsNarrowerThanMaxWidth) {
  const Circuit c = circuits::example1(80.0);
  const auto base = minimize_cycle_time(c);
  ASSERT_TRUE(base);
  const auto narrow = refine_schedule(c, base->min_cycle, SecondaryObjective::kMinTotalWidth);
  const auto wide = refine_schedule(c, base->min_cycle, SecondaryObjective::kMaxTotalWidth);
  ASSERT_TRUE(narrow && wide);
  double narrow_sum = 0.0;
  double wide_sum = 0.0;
  for (int p = 1; p <= c.num_phases(); ++p) {
    narrow_sum += narrow->schedule.T(p);
    wide_sum += wide->schedule.T(p);
  }
  EXPECT_LE(narrow_sum, wide_sum + 1e-7);
  // Minimum duty: each width is exactly what its latches' setup needs.
  EXPECT_LT(narrow_sum, wide_sum);
}

TEST(Refine, MinWidthStillSatisfiesSetups) {
  // The minimum-duty schedule keeps T_p >= D_i + setup_i for every latch.
  const Circuit c = circuits::example1(100.0);
  const auto base = minimize_cycle_time(c);
  ASSERT_TRUE(base);
  const auto r = refine_schedule(c, base->min_cycle, SecondaryObjective::kMinTotalWidth);
  ASSERT_TRUE(r);
  for (int i = 0; i < c.num_elements(); ++i) {
    const Element& e = c.element(i);
    EXPECT_LE(r->departure[static_cast<size_t>(i)] + e.setup,
              r->schedule.T(e.phase) + 1e-7);
  }
}

TEST(Refine, InfeasibleBelowOptimum) {
  const Circuit c = circuits::example1(80.0);
  const auto r = refine_schedule(c, 100.0, SecondaryObjective::kMinTotalWidth);  // < 110
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().kind, ErrorKind::kInfeasible);
}

TEST(Refine, FeasibleAboveOptimumToo) {
  // Refinement works for any achievable cycle time, not just the optimum —
  // e.g. designing for a slacker target clock.
  const Circuit c = circuits::example1(80.0);
  const auto r = refine_schedule(c, 150.0, SecondaryObjective::kMinTotalWidth);
  ASSERT_TRUE(r);
  EXPECT_NEAR(r->schedule.cycle, 150.0, 1e-6);
  EXPECT_TRUE(sta::check_schedule(c, r->schedule).feasible);
}

TEST(Refine, ObjectiveNames) {
  EXPECT_STREQ(to_string(SecondaryObjective::kMinTotalWidth), "min-total-width");
  EXPECT_STREQ(to_string(SecondaryObjective::kMaxTotalWidth), "max-total-width");
  EXPECT_STREQ(to_string(SecondaryObjective::kMinPhaseStarts), "min-phase-starts");
  EXPECT_STREQ(to_string(SecondaryObjective::kMaxPhaseStarts), "max-phase-starts");
}

TEST(Refine, NonUniquenessDemonstrated) {
  // The paper shows two different optimal schedules for Δ41 = 80 (Fig. 6a):
  // produce two distinct schedules sharing Tc = 110.
  const Circuit c = circuits::example1(80.0);
  const auto a = refine_schedule(c, 110.0, SecondaryObjective::kMinPhaseStarts);
  const auto b = refine_schedule(c, 110.0, SecondaryObjective::kMaxPhaseStarts);
  ASSERT_TRUE(a && b);
  const bool same = std::equal(a->schedule.start.begin(), a->schedule.start.end(),
                               b->schedule.start.begin(),
                               [](double x, double y) { return std::abs(x - y) < 1e-9; });
  EXPECT_FALSE(same);
}

}  // namespace
}  // namespace mintc::opt
