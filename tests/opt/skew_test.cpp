// Per-latch clock skew through the optimizing engines: the global
// GeneratorOptions::clock_skew knob is a broadcast floor over the
// first-class Element::skew field (identical LPs by construction), zero
// skew leaves the paper's pinned numbers untouched, skew moves RHS terms
// only (never the row census), both engines agree under skew, and the
// parametric skew-tolerance sweep matches point solves.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "circuits/example1.h"
#include "circuits/example2.h"
#include "circuits/gaas.h"
#include "opt/constraints.h"
#include "opt/graph_solver.h"
#include "opt/mlp.h"
#include "opt/parametric.h"
#include "opt/session.h"

namespace mintc {
namespace {

Circuit with_uniform_skew(Circuit c, double skew) {
  for (int i = 0; i < c.num_elements(); ++i) c.element(i).skew = skew;
  return c;
}

void expect_models_identical(const lp::Model& a, const lp::Model& b) {
  ASSERT_EQ(a.num_variables(), b.num_variables());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (int r = 0; r < a.num_rows(); ++r) {
    const lp::Row& ra = a.row(r);
    const lp::Row& rb = b.row(r);
    EXPECT_EQ(ra.name, rb.name);
    EXPECT_EQ(ra.sense, rb.sense);
    EXPECT_EQ(ra.rhs, rb.rhs) << ra.name;  // bitwise, not approximate
    ASSERT_EQ(ra.terms.size(), rb.terms.size()) << ra.name;
    for (size_t t = 0; t < ra.terms.size(); ++t) {
      EXPECT_EQ(ra.terms[t].var, rb.terms[t].var);
      EXPECT_EQ(ra.terms[t].coeff, rb.terms[t].coeff);
    }
  }
}

TEST(OptSkew, BroadcastEqualsLegacyGlobalExactly) {
  for (const Circuit& base : {circuits::example1(80.0), circuits::example2(),
                              circuits::gaas_datapath()}) {
    opt::GeneratorOptions global;
    global.clock_skew = 2.0;
    const Circuit broadcast = with_uniform_skew(base, 2.0);
    expect_models_identical(opt::generate_lp(base, global).model,
                            opt::generate_lp(broadcast).model);
  }
}

TEST(OptSkew, BroadcastEqualsLegacyGlobalWithHoldRows) {
  Circuit base = circuits::example2();
  for (int i = 0; i < base.num_elements(); ++i) {
    base.element(i).hold = 1.0;
    base.element(i).dq_min = 2.0;
  }
  opt::GeneratorOptions global;
  global.clock_skew = 1.5;
  global.hold_constraints = true;
  opt::GeneratorOptions per_latch;
  per_latch.hold_constraints = true;
  expect_models_identical(opt::generate_lp(base, global).model,
                          opt::generate_lp(with_uniform_skew(base, 1.5), per_latch).model);
}

TEST(OptSkew, GlobalFloorComposesWithLargerPerLatchSkew) {
  // eff = max(element.skew, clock_skew): a per-latch value above the floor
  // wins, one below is lifted to it.
  Circuit c = circuits::example1(80.0);
  c.element(0).skew = 5.0;
  opt::GeneratorOptions floor2;
  floor2.clock_skew = 2.0;
  Circuit explicit_mix = circuits::example1(80.0);
  explicit_mix.element(0).skew = 5.0;
  for (int i = 1; i < explicit_mix.num_elements(); ++i) explicit_mix.element(i).skew = 2.0;
  expect_models_identical(opt::generate_lp(c, floor2).model,
                          opt::generate_lp(explicit_mix).model);
}

TEST(OptSkew, ZeroSkewLeavesPaperPinsUntouched) {
  const Circuit gaas = with_uniform_skew(circuits::gaas_datapath(), 0.0);
  EXPECT_EQ(opt::generate_lp(gaas).counts.rows(), 91);
  const auto r = opt::minimize_cycle_time(gaas);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->min_cycle, 4.4, 1e-6);
  const auto e1 = opt::minimize_cycle_time(with_uniform_skew(circuits::example1(80.0), 0.0));
  ASSERT_TRUE(e1.has_value());
  EXPECT_NEAR(e1->min_cycle, 110.0, 1e-6);
}

TEST(OptSkew, SkewMovesRhsOnlyNeverTheRowCensus) {
  const Circuit base = circuits::gaas_datapath();
  const Circuit skewed = with_uniform_skew(base, 0.3);
  const opt::GeneratedLp a = opt::generate_lp(base);
  const opt::GeneratedLp b = opt::generate_lp(skewed);
  ASSERT_EQ(b.counts.rows(), 91);
  ASSERT_EQ(a.model.num_rows(), b.model.num_rows());
  for (int r = 0; r < a.model.num_rows(); ++r) {
    EXPECT_EQ(a.model.row(r).name, b.model.row(r).name);
    ASSERT_EQ(a.model.row(r).terms.size(), b.model.row(r).terms.size());
  }
}

TEST(OptSkew, TcIsMonotoneInUniformSkew) {
  double last = 0.0;
  for (const double s : {0.0, 1.0, 5.0, 40.0}) {
    const auto r = opt::minimize_cycle_time(with_uniform_skew(circuits::example1(80.0), s));
    ASSERT_TRUE(r.has_value());
    EXPECT_GE(r->min_cycle, last - 1e-9);
    last = r->min_cycle;
  }
  // example1(80) is loop-bound, so small skews ride for free; 40 ns widens
  // the C3 nonoverlap margins past the slack and costs real cycle time.
  EXPECT_GT(last, 110.0);
}

TEST(OptSkew, EnginesAgreeUnderPerLatchSkew) {
  Circuit c = circuits::example2();
  for (int i = 0; i < c.num_elements(); ++i) {
    c.element(i).skew = 0.25 * static_cast<double>(i % 3);
  }
  const auto lp = opt::minimize_cycle_time(c);
  const auto bf = opt::minimize_cycle_time_graph(c);
  ASSERT_TRUE(lp.has_value());
  ASSERT_TRUE(bf.has_value());
  EXPECT_NEAR(lp->min_cycle, bf->min_cycle, 1e-4 * std::max(1.0, lp->min_cycle));
  EXPECT_TRUE(opt::satisfies_p1(c, lp->schedule, lp->departure, 1e-5));
  EXPECT_TRUE(opt::satisfies_p1(c, bf->schedule, bf->departure, 1e-5));
}

TEST(OptSkew, HoldRowsChargeTheCaptureSkew) {
  Circuit base = circuits::example2();
  for (int i = 0; i < base.num_elements(); ++i) {
    base.element(i).hold = 1.0;
    base.element(i).dq_min = 2.0;
  }
  opt::GeneratorOptions gen;
  gen.hold_constraints = true;
  const lp::Model plain = opt::generate_lp(base, gen).model;
  const lp::Model skewed = opt::generate_lp(with_uniform_skew(base, 0.5), gen).model;
  ASSERT_EQ(plain.num_rows(), skewed.num_rows());
  int hold_rows = 0;
  for (int r = 0; r < plain.num_rows(); ++r) {
    if (plain.row(r).name.rfind("HOLD:", 0) != 0) continue;
    ++hold_rows;
    // σ = 0.5 charged at the capturing endpoint tightens each hold RHS by
    // exactly that amount (the legacy scalar knob never reached hold rows —
    // the per-latch field closes that pessimism gap).
    EXPECT_EQ(skewed.row(r).rhs, plain.row(r).rhs + 0.5) << plain.row(r).name;
  }
  EXPECT_GT(hold_rows, 0);
}

TEST(OptSkew, SweepClockSkewMatchesPointSolves) {
  const Circuit c = circuits::example1(80.0);
  const lp::ParametricResult sweep = opt::sweep_clock_skew(c, 0.0, 20.0, 5);
  ASSERT_EQ(sweep.points.size(), 5u);
  EXPECT_NEAR(sweep.points[0].objective, 110.0, 1e-6);
  for (const lp::ParametricPoint& p : sweep.points) {
    ASSERT_EQ(p.status, lp::SolveStatus::kOptimal);
    const auto direct = opt::minimize_cycle_time(with_uniform_skew(c, p.theta));
    ASSERT_TRUE(direct.has_value());
    EXPECT_NEAR(p.objective, direct->min_cycle, 1e-7);
  }
  // Tc*(σ) is piecewise-linear and nondecreasing.
  for (const lp::ParametricSegment& s : sweep.segments) EXPECT_GE(s.slope, -1e-9);
}

TEST(OptSkew, CycleTimeSessionSkewEditMatchesOneShot) {
  opt::CycleTimeSession session(circuits::example1(80.0));
  const auto before = session.minimize();
  ASSERT_TRUE(before.has_value());
  EXPECT_NEAR(before->min_cycle, 110.0, 1e-6);
  for (int i = 0; i < session.circuit().num_elements(); ++i) {
    session.set_element_skew(i, 3.0);
  }
  const auto warm = session.minimize();
  ASSERT_TRUE(warm.has_value());
  const auto cold = opt::minimize_cycle_time(with_uniform_skew(circuits::example1(80.0), 3.0));
  ASSERT_TRUE(cold.has_value());
  EXPECT_NEAR(warm->min_cycle, cold->min_cycle, 1e-9);
  // An invalid skew must be caught by the re-validation the setter forces.
  session.set_element_skew(0, -1.0);
  EXPECT_FALSE(session.minimize().has_value());
}

}  // namespace
}  // namespace mintc
