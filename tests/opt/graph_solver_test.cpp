// The Bellman-Ford/binary-search optimizer must agree with the simplex
// everywhere — two exact algorithms, no shared machinery beyond the model.
#include "opt/graph_solver.h"

#include <gtest/gtest.h>

#include "circuits/appendix_fig1.h"
#include "circuits/example1.h"
#include "circuits/example2.h"
#include "circuits/gaas.h"
#include "circuits/synthetic.h"
#include "opt/mlp.h"
#include "sta/analysis.h"

namespace mintc::opt {
namespace {

void expect_matches_lp(const Circuit& c, const MlpOptions& lp_opts = {},
                       const GraphSolveOptions& g_opts = {}) {
  const auto lp = minimize_cycle_time(c, lp_opts);
  const auto bf = minimize_cycle_time_graph(c, g_opts);
  ASSERT_TRUE(lp) << c.name();
  ASSERT_TRUE(bf) << c.name() << ": " << bf.error().to_string();
  EXPECT_NEAR(bf->min_cycle, lp->min_cycle, 1e-4) << c.name();
  EXPECT_TRUE(satisfies_p1(c, bf->schedule, bf->departure, 1e-5)) << c.name();
  EXPECT_TRUE(sta::check_schedule(c, bf->schedule).feasible) << c.name();
}

TEST(GraphSolver, MatchesLpOnExample1Sweep) {
  for (double d41 = 0.0; d41 <= 160.0; d41 += 20.0) {
    const Circuit c = circuits::example1(d41);
    const auto bf = minimize_cycle_time_graph(c);
    ASSERT_TRUE(bf) << d41;
    EXPECT_NEAR(bf->min_cycle, circuits::example1_optimal_tc(d41), 1e-4) << d41;
  }
}

TEST(GraphSolver, MatchesLpOnPaperCircuits) {
  expect_matches_lp(circuits::example2());
  expect_matches_lp(circuits::gaas_datapath());
  expect_matches_lp(circuits::appendix_fig1());
}

TEST(GraphSolver, MatchesLpOnSynthetics) {
  circuits::SyntheticParams p;
  for (const int k : {2, 3}) {
    p.num_phases = k;
    p.num_stages = 2 * k + 2;
    for (const uint64_t seed : {401u, 402u}) {
      expect_matches_lp(circuits::synthetic_circuit(p, seed));
    }
  }
}

TEST(GraphSolver, MatchesLpWithExtensions) {
  const Circuit c = circuits::example1(80.0);
  MlpOptions lp_opts;
  GraphSolveOptions g_opts;
  lp_opts.generator.min_phase_width = 55.0;
  g_opts.generator.min_phase_width = 55.0;
  lp_opts.generator.clock_skew = 3.0;
  g_opts.generator.clock_skew = 3.0;
  lp_opts.generator.min_phase_separation = 4.0;
  g_opts.generator.min_phase_separation = 4.0;
  expect_matches_lp(c, lp_opts, g_opts);
}

TEST(GraphSolver, MatchesLpWithHoldRows) {
  Circuit c = circuits::example1(80.0);
  for (int i = 0; i < c.num_elements(); ++i) {
    c.element(i).hold = 2.0;
    c.element(i).dq_min = 5.0;
  }
  MlpOptions lp_opts;
  GraphSolveOptions g_opts;
  lp_opts.generator.hold_constraints = true;
  g_opts.generator.hold_constraints = true;
  expect_matches_lp(c, lp_opts, g_opts);
}

TEST(GraphSolver, MatchesLpWithArrivalBasedSetup) {
  MlpOptions lp_opts;
  GraphSolveOptions g_opts;
  lp_opts.generator.arrival_based_setup = true;
  g_opts.generator.arrival_based_setup = true;
  expect_matches_lp(circuits::example1(100.0), lp_opts, g_opts);
}

TEST(GraphSolver, InfeasibleHoldReported) {
  // The same degenerate hold system the LP path rejects (see mlp_test).
  Circuit c("infeasible", 1);
  c.add_latch("A", 1, 1.0, 2.0);
  Element b;
  b.name = "B";
  b.phase = 1;
  b.setup = 1.0;
  b.dq = 2.0;
  b.hold = 1e6;
  c.add_element(b);
  c.add_path("A", "B", 10.0, 0.0);
  GraphSolveOptions g_opts;
  g_opts.generator.hold_constraints = true;
  const auto bf = minimize_cycle_time_graph(c, g_opts);
  ASSERT_FALSE(bf);
  EXPECT_EQ(bf.error().kind, ErrorKind::kInfeasible);
}

TEST(GraphSolver, InvalidCircuitRejected) {
  Circuit c("bad", 1);
  c.add_latch("X", 9, 1.0, 2.0);
  const auto bf = minimize_cycle_time_graph(c);
  ASSERT_FALSE(bf);
  EXPECT_EQ(bf.error().kind, ErrorKind::kInvalidCircuit);
}

TEST(GraphSolver, ReportsWork) {
  const auto bf = minimize_cycle_time_graph(circuits::gaas_datapath());
  ASSERT_TRUE(bf);
  EXPECT_GT(bf->search_steps, 10);  // ~log2(range/tol)
  EXPECT_GT(bf->relaxations, 0);
}

TEST(GraphSolver, FlipFlopCircuits) {
  Circuit c("ff", 2);
  c.add_latch("L", 1, 1.0, 2.0);
  c.add_flipflop("F", 2, 1.0, 2.0);
  c.add_path("L", "F", 10.0);
  c.add_path("F", "L", 10.0);
  expect_matches_lp(c);
}

}  // namespace
}  // namespace mintc::opt
