#include "opt/parametric.h"

#include <gtest/gtest.h>

#include "circuits/example1.h"

namespace mintc::opt {
namespace {

TEST(ParametricSweep, Fig7ThreeSegments) {
  // The paper's Fig. 7: Tc(Δ41) has three linear segments with slopes
  // 0, 1/2, 1 breaking at Δ41 = 20 and Δ41 = 100.
  const Circuit c = circuits::example1(0.0);
  const lp::ParametricResult r =
      sweep_path_delay(c, circuits::example1_ld_path(), 0.0, 160.0, 33);
  ASSERT_EQ(r.segments.size(), 3u);
  EXPECT_NEAR(r.segments[0].slope, 0.0, 1e-6);
  EXPECT_NEAR(r.segments[1].slope, 0.5, 1e-6);
  EXPECT_NEAR(r.segments[2].slope, 1.0, 1e-6);
  EXPECT_NEAR(r.segments[0].theta_end, 20.0, 1e-6);
  EXPECT_NEAR(r.segments[1].theta_end, 100.0, 1e-6);
  EXPECT_NEAR(r.segments[0].value_begin, 80.0, 1e-6);
}

TEST(ParametricSweep, SamplesMatchDirectSolves) {
  const Circuit c = circuits::example1(0.0);
  const lp::ParametricResult r =
      sweep_path_delay(c, circuits::example1_ld_path(), 0.0, 160.0, 9);
  for (const lp::ParametricPoint& p : r.points) {
    EXPECT_NEAR(p.objective, circuits::example1_optimal_tc(p.theta), 1e-6)
        << "theta=" << p.theta;
  }
}

TEST(ParametricSweep, RespectsGeneratorOptions) {
  // With a generous minimum phase width the flat region lifts: widths eat
  // into the borrowing headroom.
  const Circuit c = circuits::example1(0.0);
  GeneratorOptions opt;
  opt.min_phase_width = 55.0;
  const lp::ParametricResult with_opt =
      sweep_path_delay(c, circuits::example1_ld_path(), 0.0, 40.0, 5, opt);
  const lp::ParametricResult without =
      sweep_path_delay(c, circuits::example1_ld_path(), 0.0, 40.0, 5);
  ASSERT_EQ(with_opt.points.size(), without.points.size());
  for (size_t i = 0; i < with_opt.points.size(); ++i) {
    EXPECT_GE(with_opt.points[i].objective, without.points[i].objective - 1e-9);
  }
}

}  // namespace
}  // namespace mintc::opt
