#include "base/approx.h"

#include <gtest/gtest.h>

namespace mintc {
namespace {

TEST(Approx, EqWithinTolerance) {
  EXPECT_TRUE(approx_eq(1.0, 1.0));
  EXPECT_TRUE(approx_eq(1.0, 1.0 + 1e-9));
  EXPECT_FALSE(approx_eq(1.0, 1.001));
  EXPECT_TRUE(approx_eq(1.0, 1.0005, 1e-3));
}

TEST(Approx, EqHandlesNegatives) {
  EXPECT_TRUE(approx_eq(-5.0, -5.0 + 1e-10));
  EXPECT_FALSE(approx_eq(-5.0, 5.0));
}

TEST(Approx, LeGeAreToleranceShifted) {
  EXPECT_TRUE(approx_le(1.0, 1.0));
  EXPECT_TRUE(approx_le(1.0 + 1e-9, 1.0));
  EXPECT_FALSE(approx_le(1.01, 1.0));
  EXPECT_TRUE(approx_ge(1.0 - 1e-9, 1.0));
  EXPECT_FALSE(approx_ge(0.99, 1.0));
}

TEST(Approx, DefinitelyComparisons) {
  EXPECT_TRUE(definitely_lt(0.9, 1.0));
  EXPECT_FALSE(definitely_lt(1.0 - 1e-9, 1.0));
  EXPECT_TRUE(definitely_gt(1.1, 1.0));
  EXPECT_FALSE(definitely_gt(1.0 + 1e-9, 1.0));
}

TEST(Approx, SnapZero) {
  EXPECT_EQ(snap_zero(1e-9), 0.0);
  EXPECT_EQ(snap_zero(-1e-9), 0.0);
  EXPECT_EQ(snap_zero(0.5), 0.5);
  EXPECT_EQ(snap_zero(-0.5), -0.5);
}

TEST(Approx, RoundTo) {
  EXPECT_DOUBLE_EQ(round_to(1.23456, 2), 1.23);
  EXPECT_DOUBLE_EQ(round_to(1.235, 2), 1.24);
  EXPECT_DOUBLE_EQ(round_to(-1.5, 0), -2.0);  // std::round: away from zero
  EXPECT_DOUBLE_EQ(round_to(100.0, 3), 100.0);
}

}  // namespace
}  // namespace mintc
