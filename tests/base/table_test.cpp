#include "base/table.h"

#include <gtest/gtest.h>

namespace mintc {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  // Header, underline, two rows.
  EXPECT_NE(s.find("name    value"), std::string::npos);
  EXPECT_NE(s.find("longer  22"), std::string::npos);
  EXPECT_NE(s.find("a       1"), std::string::npos);
}

TEST(TextTable, UnderlineSpansWidth) {
  TextTable t({"ab", "cd"});
  t.add_row({"x", "y"});
  const std::string s = t.to_string();
  // "ab  cd" is 6 characters wide -> 6 dashes.
  EXPECT_NE(s.find("------\n"), std::string::npos);
}

TEST(TextTable, CountsRows) {
  TextTable t({"h"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"r"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TextTable, WideCellStretchesColumn) {
  TextTable t({"h", "i"});
  t.add_row({"wide-cell-content", "x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("wide-cell-content  x"), std::string::npos);
}

}  // namespace
}  // namespace mintc
