#include "base/error.h"

#include <gtest/gtest.h>

#include <string>

namespace mintc {
namespace {

Expected<int> parse_positive(int v) {
  if (v <= 0) return make_error(ErrorKind::kInvalidArgument, "must be positive");
  return v;
}

TEST(Expected, HoldsValue) {
  const Expected<int> e = parse_positive(5);
  ASSERT_TRUE(e);
  EXPECT_EQ(e.value(), 5);
  EXPECT_EQ(*e, 5);
}

TEST(Expected, HoldsError) {
  const Expected<int> e = parse_positive(-1);
  ASSERT_FALSE(e);
  EXPECT_EQ(e.error().kind, ErrorKind::kInvalidArgument);
  EXPECT_EQ(e.error().message, "must be positive");
}

TEST(Expected, ArrowOperator) {
  Expected<std::string> e = std::string("abc");
  EXPECT_EQ(e->size(), 3u);
}

TEST(Expected, MoveOut) {
  Expected<std::string> e = std::string("payload");
  const std::string s = std::move(e).value();
  EXPECT_EQ(s, "payload");
}

TEST(ErrorKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(ErrorKind::kInvalidArgument), "invalid_argument");
  EXPECT_STREQ(to_string(ErrorKind::kInvalidCircuit), "invalid_circuit");
  EXPECT_STREQ(to_string(ErrorKind::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(ErrorKind::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(ErrorKind::kNotConverged), "not_converged");
  EXPECT_STREQ(to_string(ErrorKind::kIo), "io");
}

TEST(Error, ToStringIncludesKindAndMessage) {
  const Error e = make_error(ErrorKind::kInfeasible, "no schedule");
  EXPECT_EQ(e.to_string(), "infeasible: no schedule");
}

}  // namespace
}  // namespace mintc
