#include "base/strings.h"

#include <gtest/gtest.h>

namespace mintc {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("\t a b \n"), "a b");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, SplitWs) {
  const auto t = split_ws("  a  bb\tccc \n d ");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "bb");
  EXPECT_EQ(t[2], "ccc");
  EXPECT_EQ(t[3], "d");
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, SplitKeepsEmptyTokens) {
  const auto t = split("a,,b,", ',');
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "");
  EXPECT_EQ(t[2], "b");
  EXPECT_EQ(t[3], "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("latch L1", "latch"));
  EXPECT_FALSE(starts_with("lat", "latch"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Strings, ParseDouble) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("12.5", v));
  EXPECT_DOUBLE_EQ(v, 12.5);
  EXPECT_TRUE(parse_double(" -3e2 ", v));
  EXPECT_DOUBLE_EQ(v, -300.0);
  EXPECT_FALSE(parse_double("12x", v));
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double("nanx", v));
}

TEST(Strings, ParseInt) {
  int v = 0;
  EXPECT_TRUE(parse_int("42", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_int("-7", v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(parse_int("4.2", v));
  EXPECT_FALSE(parse_int("", v));
  EXPECT_FALSE(parse_int("x", v));
}

TEST(Strings, FmtTimeTrimsZeros) {
  EXPECT_EQ(fmt_time(12.5), "12.5");
  EXPECT_EQ(fmt_time(12.0), "12");
  EXPECT_EQ(fmt_time(12.125, 3), "12.125");
  EXPECT_EQ(fmt_time(12.1256, 3), "12.126");
  EXPECT_EQ(fmt_time(0.0), "0");
  EXPECT_EQ(fmt_time(-0.0), "0");
  EXPECT_EQ(fmt_time(-2.50), "-2.5");
}

}  // namespace
}  // namespace mintc
