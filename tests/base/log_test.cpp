#include "base/log.h"

#include <gtest/gtest.h>

namespace mintc {
namespace {

class LogTest : public testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

TEST_F(LogTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LogTest, StreamInterfaceCompiles) {
  set_log_level(LogLevel::kOff);
  // Must not crash or emit anything at kOff.
  log_info() << "value=" << 42 << " name=" << std::string("x");
  log_error() << "suppressed";
}

TEST_F(LogTest, DefaultLevelIsWarn) { EXPECT_EQ(log_level(), LogLevel::kWarn); }

}  // namespace
}  // namespace mintc
