#include "base/log.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace mintc {
namespace {

class LogTest : public testing::Test {
 protected:
  void TearDown() override {
    set_log_level(LogLevel::kWarn);
    set_log_sink({});  // restore the default stderr sink
  }
};

TEST_F(LogTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LogTest, StreamInterfaceCompiles) {
  set_log_level(LogLevel::kOff);
  // Must not crash or emit anything at kOff.
  log_info() << "value=" << 42 << " name=" << std::string("x");
  log_error() << "suppressed";
}

TEST_F(LogTest, DefaultLevelIsWarn) { EXPECT_EQ(log_level(), LogLevel::kWarn); }

TEST_F(LogTest, SinkCapturesAcceptedLines) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&](LogLevel level, const std::string& msg) {
    captured.emplace_back(level, msg);
  });
  set_log_level(LogLevel::kInfo);
  log_line(LogLevel::kInfo, "hello");
  log_line(LogLevel::kDebug, "filtered out");  // below the level: not sunk
  log_error() << "count=" << 3;

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[0].second, "hello");
  EXPECT_EQ(captured[1].first, LogLevel::kError);
  EXPECT_EQ(captured[1].second, "count=3");
}

TEST_F(LogTest, LevelFilterAppliesBeforeTheSink) {
  int calls = 0;
  set_log_sink([&](LogLevel, const std::string&) { ++calls; });
  set_log_level(LogLevel::kOff);
  log_line(LogLevel::kError, "never delivered");
  EXPECT_EQ(calls, 0);
}

TEST_F(LogTest, ResettingSinkRestoresDefault) {
  int calls = 0;
  set_log_sink([&](LogLevel, const std::string&) { ++calls; });
  log_line(LogLevel::kError, "to sink");
  EXPECT_EQ(calls, 1);
  set_log_sink({});
  set_log_level(LogLevel::kOff);  // keep the default sink quiet for the check
  log_line(LogLevel::kError, "suppressed");
  EXPECT_EQ(calls, 1);  // the replaced sink no longer sees lines
}

TEST_F(LogTest, SinkMaySwapItselfWithoutDeadlock) {
  int outer = 0, inner = 0;
  set_log_sink([&](LogLevel, const std::string&) {
    ++outer;
    set_log_sink([&](LogLevel, const std::string&) { ++inner; });
  });
  log_line(LogLevel::kError, "first");
  log_line(LogLevel::kError, "second");
  EXPECT_EQ(outer, 1);
  EXPECT_EQ(inner, 1);
}

}  // namespace
}  // namespace mintc
