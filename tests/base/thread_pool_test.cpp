// Work-stealing thread pool used by the parallel fixpoint engine.
#include "base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

namespace mintc::base {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 1000);
  EXPECT_EQ(pool.executed_count(), 1000);
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true); });
  pool.wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, WaitCoversNestedSubmissions) {
  // A task submitting follow-up work transitively: wait() must not return
  // until the whole tree ran. Three levels, fanout 4 -> 1 + 4 + 16 + 64.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::function<void(int)> spawn = [&](int depth) {
    count.fetch_add(1, std::memory_order_relaxed);
    if (depth == 0) return;
    for (int i = 0; i < 4; ++i) {
      pool.submit([&spawn, depth] { spawn(depth - 1); });
    }
  };
  pool.submit([&spawn] { spawn(3); });
  pool.wait();
  EXPECT_EQ(count.load(), 1 + 4 + 16 + 64);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait();
    EXPECT_EQ(count.load(), (batch + 1) * 50);
  }
}

TEST(ThreadPool, WorkerIndexIsStableAndExternalThreadGetsMinusOne) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_index(), -1);  // the test thread is not a worker
  std::mutex mu;
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) {
    pool.submit([&] {
      const int idx = pool.worker_index();
      const std::lock_guard<std::mutex> lk(mu);
      seen.insert(idx);
    });
  }
  pool.wait();
  for (const int idx : seen) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 3);
  }
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait(): ~ThreadPool must finish the backlog before joining.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, StealCounterOnlyMovesForward) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.steal_count(), 0);
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  const std::int64_t after = pool.steal_count();
  EXPECT_GE(after, 0);
  EXPECT_LE(after, pool.executed_count());
}

}  // namespace
}  // namespace mintc::base
