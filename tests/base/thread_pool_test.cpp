// Work-stealing thread pool used by the parallel fixpoint engine.
#include "base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

namespace mintc::base {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 1000);
  EXPECT_EQ(pool.executed_count(), 1000);
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true); });
  pool.wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, WaitCoversNestedSubmissions) {
  // A task submitting follow-up work transitively: wait() must not return
  // until the whole tree ran. Three levels, fanout 4 -> 1 + 4 + 16 + 64.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::function<void(int)> spawn = [&](int depth) {
    count.fetch_add(1, std::memory_order_relaxed);
    if (depth == 0) return;
    for (int i = 0; i < 4; ++i) {
      pool.submit([&spawn, depth] { spawn(depth - 1); });
    }
  };
  pool.submit([&spawn] { spawn(3); });
  pool.wait();
  EXPECT_EQ(count.load(), 1 + 4 + 16 + 64);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait();
    EXPECT_EQ(count.load(), (batch + 1) * 50);
  }
}

TEST(ThreadPool, WorkerIndexIsStableAndExternalThreadGetsMinusOne) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_index(), -1);  // the test thread is not a worker
  std::mutex mu;
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) {
    pool.submit([&] {
      const int idx = pool.worker_index();
      const std::lock_guard<std::mutex> lk(mu);
      seen.insert(idx);
    });
  }
  pool.wait();
  for (const int idx : seen) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 3);
  }
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait(): ~ThreadPool must finish the backlog before joining.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, StealCounterOnlyMovesForward) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.steal_count(), 0);
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  const std::int64_t after = pool.steal_count();
  EXPECT_GE(after, 0);
  EXPECT_LE(after, pool.executed_count());
}

TEST(ThreadPool, TaskGroupWaitCoversOnlyItsOwnTasks) {
  ThreadPool pool(2);
  TaskGroup group;
  std::atomic<int> grouped{0};
  std::atomic<int> loose{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit(group, [&grouped] { grouped.fetch_add(1, std::memory_order_relaxed); });
    pool.submit([&loose] { loose.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(grouped.load(), 100);
  EXPECT_EQ(group.pending(), 0);
  pool.wait();
  EXPECT_EQ(loose.load(), 100);
}

TEST(ThreadPool, TaskGroupWaitReturnsUnderContinuousForeignLoad) {
  // The serve listener's exact situation: drain OUR in-flight requests while
  // other threads keep the pool busy indefinitely. A global pool.wait()
  // could starve forever here; the group wait must not.
  ThreadPool pool(3);
  TaskGroup group;
  std::atomic<bool> keep_flooding{true};
  std::thread flooder([&] {
    while (keep_flooding.load(std::memory_order_relaxed)) {
      pool.submit([] { std::this_thread::sleep_for(std::chrono::microseconds(50)); });
      std::this_thread::sleep_for(std::chrono::microseconds(10));
    }
  });
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit(group, [&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(done.load(), 50);
  EXPECT_EQ(group.pending(), 0);
  keep_flooding.store(false);
  flooder.join();
  pool.wait();
}

TEST(ThreadPool, TaskGroupIsReusableAndWaitableWhenEmpty) {
  ThreadPool pool(2);
  TaskGroup group;
  group.wait();  // no pending tasks: returns immediately
  for (int batch = 0; batch < 3; ++batch) {
    std::atomic<int> count{0};
    for (int i = 0; i < 20; ++i) {
      pool.submit(group, [&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    group.wait();
    EXPECT_EQ(count.load(), 20);
  }
}

TEST(ThreadPool, TaskGroupSupportsNestedSubmission) {
  ThreadPool pool(2);
  TaskGroup group;
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit(group, [&] {
      count.fetch_add(1, std::memory_order_relaxed);
      // Follow-up work joins the same group; wait() must cover it too.
      pool.submit(group, [&count] { count.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  group.wait();
  EXPECT_EQ(count.load(), 20);
}

}  // namespace
}  // namespace mintc::base
