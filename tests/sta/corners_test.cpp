#include "sta/corners.h"

#include <gtest/gtest.h>

#include "circuits/example1.h"
#include "opt/mlp.h"

namespace mintc::sta {
namespace {

TEST(Corners, StandardTriple) {
  const auto corners = standard_corners(0.2);
  ASSERT_EQ(corners.size(), 3u);
  EXPECT_EQ(corners[0].name, "slow");
  EXPECT_DOUBLE_EQ(corners[0].delay_scale, 1.2);
  EXPECT_DOUBLE_EQ(corners[2].delay_scale, 0.8);
}

TEST(Corners, DerateScalesEverything) {
  const Circuit c = circuits::example1(80.0);
  const Circuit slow = derate(c, {"slow", 1.5, 1.5});
  EXPECT_DOUBLE_EQ(slow.element(0).setup, 15.0);
  EXPECT_DOUBLE_EQ(slow.element(0).dq, 15.0);
  EXPECT_DOUBLE_EQ(slow.path(3).delay, 120.0);
  EXPECT_NE(slow.name().find("@slow"), std::string::npos);
  EXPECT_TRUE(slow.validate().empty());
}

TEST(Corners, DerateKeepsMinBelowMax) {
  Circuit c("m", 1);
  Element e;
  e.name = "A";
  e.phase = 1;
  e.setup = 1.0;
  e.dq = 2.0;
  e.dq_min = 1.5;
  c.add_element(e);
  // A corner that scales mins up more than maxes must still be consistent.
  const Circuit odd = derate(c, {"odd", 1.0, 2.0});
  EXPECT_LE(odd.element(0).min_dq(), odd.element(0).dq);
  EXPECT_TRUE(odd.validate().empty());
}

TEST(Corners, OptimalScheduleFailsAtSlowCorner) {
  // The exact optimum has zero margin: any slowdown breaks it.
  const Circuit c = circuits::example1(80.0);
  const auto r = opt::minimize_cycle_time(c);
  ASSERT_TRUE(r.has_value());
  const CornerReport rep = check_corners(c, r->schedule, standard_corners(0.1));
  EXPECT_FALSE(rep.all_pass);
  ASSERT_EQ(rep.corners.size(), 3u);
  EXPECT_FALSE(rep.corners[0].report.feasible);  // slow
  EXPECT_TRUE(rep.corners[1].report.feasible);   // typical
}

TEST(Corners, MarginedScheduleSurvivesAllCorners) {
  // Designing WITH a skew/derate margin: optimize the slow-corner circuit,
  // then all corners pass under the resulting schedule (long paths only; no
  // hold constraints in this circuit since min delays are zero and holds 0).
  const Circuit c = circuits::example1(80.0);
  const Circuit slow = derate(c, {"slow", 1.1, 1.1});
  const auto r = opt::minimize_cycle_time(slow);
  ASSERT_TRUE(r.has_value());
  const CornerReport rep = check_corners(c, r->schedule, standard_corners(0.1));
  EXPECT_TRUE(rep.all_pass) << rep.to_string(c);
}

TEST(Corners, ReportRendering) {
  const Circuit c = circuits::example1(80.0);
  const auto r = opt::minimize_cycle_time(c);
  ASSERT_TRUE(r.has_value());
  const CornerReport rep = check_corners(c, r->schedule);
  const std::string s = rep.to_string(c);
  EXPECT_NE(s.find("slow"), std::string::npos);
  EXPECT_NE(s.find("typical"), std::string::npos);
  EXPECT_NE(s.find("fast"), std::string::npos);
  EXPECT_NE(s.find("worst setup slack"), std::string::npos);
}

}  // namespace
}  // namespace mintc::sta
