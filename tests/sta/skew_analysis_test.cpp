// Clock skew through the analysis stack: σ is charged at the CAPTURING
// endpoint only — setup and hold slacks each lose exactly σ_i, eq. (17)
// departures never move (the fixpoint stays skew-independent by design),
// corners leave σ unscaled, and AnalysisSession skew edits are warm,
// undoable, and bit-identical to fresh analyses.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "circuits/example2.h"
#include "circuits/gaas.h"
#include "opt/mlp.h"
#include "sta/analysis.h"
#include "sta/corners.h"
#include "sta/session.h"

namespace mintc {
namespace sta {
namespace {

AnalysisOptions with_hold() {
  AnalysisOptions o;
  o.check_hold = true;
  return o;
}

Circuit skewed_example2(double scale) {
  Circuit c = circuits::example2();
  for (int i = 0; i < c.num_elements(); ++i) {
    c.element(i).skew = scale * static_cast<double>(i + 1);
  }
  return c;
}

void expect_reports_identical(const TimingReport& a, const TimingReport& b) {
  ASSERT_EQ(a.elements.size(), b.elements.size());
  for (size_t i = 0; i < a.elements.size(); ++i) {
    EXPECT_EQ(a.elements[i].departure, b.elements[i].departure);
    EXPECT_EQ(a.elements[i].arrival, b.elements[i].arrival);
    EXPECT_EQ(a.elements[i].setup_slack, b.elements[i].setup_slack);
    EXPECT_EQ(a.elements[i].hold_slack, b.elements[i].hold_slack);
  }
  EXPECT_EQ(a.setup_ok, b.setup_ok);
  EXPECT_EQ(a.hold_ok, b.hold_ok);
  EXPECT_EQ(a.worst_setup_slack, b.worst_setup_slack);
  EXPECT_EQ(a.worst_hold_slack, b.worst_hold_slack);
}

TEST(SkewAnalysis, DeparturesAreSkewIndependent) {
  const auto opt = opt::minimize_cycle_time(circuits::example2());
  ASSERT_TRUE(opt.has_value());
  const TimingReport plain = check_schedule(circuits::example2(), opt->schedule, with_hold());
  const TimingReport skewed = check_schedule(skewed_example2(0.2), opt->schedule, with_hold());
  ASSERT_EQ(plain.elements.size(), skewed.elements.size());
  for (size_t i = 0; i < plain.elements.size(); ++i) {
    EXPECT_EQ(plain.elements[i].departure, skewed.elements[i].departure);
    EXPECT_EQ(plain.elements[i].arrival, skewed.elements[i].arrival);
  }
}

TEST(SkewAnalysis, SetupAndHoldSlackEachLoseExactlySigma) {
  const auto opt = opt::minimize_cycle_time(circuits::example2());
  ASSERT_TRUE(opt.has_value());
  // Relax the schedule so every slack is finite and positive pre-skew.
  const ClockSchedule relaxed = opt->schedule.scaled(1.5);
  const TimingReport plain = check_schedule(circuits::example2(), relaxed, with_hold());
  const Circuit skewed_c = skewed_example2(0.1);
  const TimingReport skewed = check_schedule(skewed_c, relaxed, with_hold());
  for (size_t i = 0; i < plain.elements.size(); ++i) {
    const double sigma = skewed_c.element(static_cast<int>(i)).skew;
    EXPECT_NEAR(skewed.elements[i].setup_slack, plain.elements[i].setup_slack - sigma,
                1e-12);
    if (std::isfinite(plain.elements[i].hold_slack)) {
      EXPECT_NEAR(skewed.elements[i].hold_slack, plain.elements[i].hold_slack - sigma,
                  1e-12);
    }
  }
}

TEST(SkewAnalysis, ZeroSkewIsBitIdentical) {
  const auto opt = opt::minimize_cycle_time(circuits::gaas_datapath());
  ASSERT_TRUE(opt.has_value());
  Circuit zero = circuits::gaas_datapath();
  for (int i = 0; i < zero.num_elements(); ++i) zero.element(i).skew = 0.0;
  expect_reports_identical(check_schedule(circuits::gaas_datapath(), opt->schedule, with_hold()),
                           check_schedule(zero, opt->schedule, with_hold()));
}

TEST(SkewAnalysis, CornersLeaveSkewUnscaled) {
  const Circuit c = skewed_example2(0.3);
  for (const Corner& corner : standard_corners(0.2)) {
    const Circuit d = derate(c, corner);
    for (int i = 0; i < c.num_elements(); ++i) {
      EXPECT_EQ(d.element(i).skew, c.element(i).skew) << corner.name;
    }
  }
}

TEST(SkewAnalysis, SessionSkewEditIsWarmUndoableAndExact) {
  const auto opt = opt::minimize_cycle_time(circuits::example2());
  ASSERT_TRUE(opt.has_value());
  const ClockSchedule relaxed = opt->schedule.scaled(1.25);
  const Circuit skewed_c = skewed_example2(0.15);

  AnalysisSession session(circuits::example2(), relaxed, with_hold());
  const TimingReport cold = session.analyze();
  expect_reports_identical(cold, check_schedule(circuits::example2(), relaxed, with_hold()));
  const std::uint64_t fp_before = session.content_fingerprint();

  const size_t mark = session.mark();
  for (int i = 0; i < skewed_c.num_elements(); ++i) {
    session.set_element_skew(i, skewed_c.element(i).skew);
  }
  EXPECT_NE(session.content_fingerprint(), fp_before);  // serve-cache soundness
  expect_reports_identical(session.analyze(),
                           check_schedule(skewed_c, relaxed, with_hold()));

  session.undo_to(mark);
  EXPECT_EQ(session.content_fingerprint(), fp_before);
  expect_reports_identical(session.analyze(),
                           check_schedule(circuits::example2(), relaxed, with_hold()));
}

TEST(SkewAnalysis, SessionDeratingComposesWithSkew) {
  // apply_derating scales silicon delays but not σ; the session must agree
  // with sta::derate on a skewed circuit bit-for-bit.
  const auto opt = opt::minimize_cycle_time(circuits::example2());
  ASSERT_TRUE(opt.has_value());
  const ClockSchedule relaxed = opt->schedule.scaled(1.25);
  const Circuit skewed_c = skewed_example2(0.15);
  Corner slow;
  slow.name = "slow";
  slow.delay_scale = 1.1;
  slow.min_scale = 0.95;

  AnalysisSession session(skewed_c, relaxed, with_hold());
  session.apply_derating(slow.delay_scale, slow.min_scale);
  expect_reports_identical(session.analyze(),
                           check_schedule(derate(skewed_c, slow), relaxed, with_hold()));
}

}  // namespace
}  // namespace sta
}  // namespace mintc
