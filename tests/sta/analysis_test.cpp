#include "sta/analysis.h"

#include <gtest/gtest.h>

#include "circuits/example1.h"

namespace mintc::sta {
namespace {

TEST(Analysis, OptimalSchedulePasses) {
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule sch(110.0, {0.0, 80.0}, {80.0, 30.0});
  const TimingReport rep = check_schedule(c, sch);
  EXPECT_TRUE(rep.feasible);
  EXPECT_TRUE(rep.schedule_ok);
  EXPECT_TRUE(rep.converged);
  EXPECT_TRUE(rep.setup_ok);
}

TEST(Analysis, OptimumIsTight) {
  // At Δ41 = 80 the binding constraint at the optimum is the loop average,
  // which manifests as fixpoint divergence (not a zero setup slack) the
  // moment the schedule is shrunk: worst slack is positive but the design
  // has no headroom.
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule sch(110.0, {0.0, 80.0}, {80.0, 30.0});
  const TimingReport rep = check_schedule(c, sch);
  EXPECT_TRUE(rep.feasible);
  EXPECT_GE(rep.worst_setup_slack, 0.0);
  EXPECT_GE(rep.worst_setup_element, 0);
  EXPECT_FALSE(check_schedule(c, sch.scaled(0.999)).feasible);
}

TEST(Analysis, WorstSlackIsZeroWhenSetupBinds) {
  // At Δ41 = 0 the optimum Tc = 80 is set by the Lc path span (Section V:
  // "set by some other delay in the circuit"); there the setup constraint
  // of L4 is exactly tight in the optimal schedule.
  const Circuit c = circuits::example1(0.0);
  // An optimal schedule: phi1=[0,40), phi2=[40,80). L4 departs at 30 after
  // waiting out the Lc path, leaving exactly its 10 ns setup inside T2.
  const ClockSchedule sch(80.0, {0.0, 40.0}, {40.0, 40.0});
  const TimingReport rep = check_schedule(c, sch);
  ASSERT_TRUE(rep.feasible);
  EXPECT_NEAR(rep.worst_setup_slack, 0.0, 1e-7);
  EXPECT_EQ(rep.worst_setup_element, 3);  // L4
}

TEST(Analysis, SubOptimalCycleFails) {
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule sch(100.0, {0.0, 72.0}, {72.0, 28.0});  // ~0.91 scale
  const TimingReport rep = check_schedule(c, sch);
  EXPECT_FALSE(rep.feasible);
}

TEST(Analysis, GenerousCyclePassesWithSlack) {
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule sch(200.0, {0.0, 120.0}, {120.0, 80.0});
  const TimingReport rep = check_schedule(c, sch);
  EXPECT_TRUE(rep.feasible);
  EXPECT_GT(rep.worst_setup_slack, 1.0);
}

TEST(Analysis, BadClockConstraintsReported) {
  const Circuit c = circuits::example1(80.0);
  // Overlapping phases where K requires nonoverlap.
  const ClockSchedule sch(110.0, {0.0, 40.0}, {80.0, 30.0});
  const TimingReport rep = check_schedule(c, sch);
  EXPECT_FALSE(rep.feasible);
  EXPECT_FALSE(rep.schedule_ok);
  EXPECT_FALSE(rep.clock_violations.empty());
}

TEST(Analysis, DivergentLoopReportedAsNotConverged) {
  Circuit c("race", 1);
  c.add_latch("A", 1, 1.0, 2.0);
  c.add_latch("B", 1, 1.0, 2.0);
  c.add_path("A", "B", 30.0);
  c.add_path("B", "A", 30.0);
  const ClockSchedule sch(10.0, {0.0}, {10.0});
  const TimingReport rep = check_schedule(c, sch);
  EXPECT_FALSE(rep.feasible);
  EXPECT_FALSE(rep.converged);
}

TEST(Analysis, FlipFlopSetupAgainstLeadingEdge) {
  // Latch L(phi1) feeds FF F(phi2) with delay making arrival exactly at
  // -setup relative to phi2's leading edge: slack 0.
  Circuit c("ff", 2);
  c.add_latch("L", 1, 1.0, 2.0);
  c.add_flipflop("F", 2, 1.0, 2.0);
  c.add_path("L", "F", 47.0);
  // Arrival at F = D_L + 2 + 47 + S(1,2) = 49 - 50 = -1 == -setup.
  const ClockSchedule sch(100.0, {0.0, 50.0}, {40.0, 40.0});
  const TimingReport rep = check_schedule(c, sch);
  ASSERT_TRUE(rep.converged);
  EXPECT_NEAR(rep.elements[1].setup_slack, 0.0, 1e-9);
  EXPECT_TRUE(rep.setup_ok);
  // One more ps of delay and it fails.
  Circuit c2("ff2", 2);
  c2.add_latch("L", 1, 1.0, 2.0);
  c2.add_flipflop("F", 2, 1.0, 2.0);
  c2.add_path("L", "F", 47.5);
  EXPECT_FALSE(check_schedule(c2, sch).setup_ok);
}

TEST(Analysis, ReportRendering) {
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule sch(110.0, {0.0, 80.0}, {80.0, 30.0});
  const TimingReport rep = check_schedule(c, sch);
  const std::string s = rep.to_string(c);
  EXPECT_NE(s.find("PASS"), std::string::npos);
  EXPECT_NE(s.find("L1"), std::string::npos);
  EXPECT_NE(s.find("setup slack"), std::string::npos);
}

TEST(Analysis, FailReportExplainsDivergence) {
  Circuit c("race", 1);
  c.add_latch("A", 1, 1.0, 2.0);
  c.add_latch("B", 1, 1.0, 2.0);
  c.add_path("A", "B", 30.0);
  c.add_path("B", "A", 30.0);
  const TimingReport rep = check_schedule(c, ClockSchedule(10.0, {0.0}, {10.0}));
  const std::string s = rep.to_string(c);
  EXPECT_NE(s.find("FAIL"), std::string::npos);
  EXPECT_NE(s.find("positive latch loop"), std::string::npos);
}

TEST(Analysis, EmptyCircuit) {
  Circuit c("empty", 1);
  const TimingReport rep = check_schedule(c, ClockSchedule(10.0, {0.0}, {5.0}));
  EXPECT_TRUE(rep.feasible);
}

}  // namespace
}  // namespace mintc::sta
