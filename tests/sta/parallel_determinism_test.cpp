// Cross-thread-count determinism of the parallel fixpoint engine.
//
// The contract under test: for any circuit and any convergent schedule, the
// parallel engine's departure vector is EXACTLY equal (operator==, i.e.
// bitwise for doubles without NaN) across every thread count, every kernel,
// and equal to the scalar kSccOrdered scheme. 200 fuzzed circuits x
// {1, 2, 4, 8} threads, plus the two topological extremes: a single giant
// SCC (zero scheduling freedom, all parallelism in the kernel) and a
// 10^4-component soup (maximal scheduling freedom, the adversarial case for
// determinism).
#include <gtest/gtest.h>

#include <vector>

#include "circuits/synthetic.h"
#include "netlist/generators.h"
#include "sta/analysis.h"
#include "sta/fixpoint.h"
#include "sta/parallel_fixpoint.h"

namespace mintc::sta {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};

std::vector<double> zeros(const Circuit& c) {
  return std::vector<double>(static_cast<size_t>(c.num_elements()), 0.0);
}

// Solve with the scalar kSccOrdered baseline and with the parallel engine at
// every thread count; require exact equality of vectors and verdicts.
void expect_deterministic(const Circuit& c, const ClockSchedule& sch,
                          const char* what) {
  const TimingView view(c);
  const ShiftTable shifts(sch);
  FixpointOptions fo;
  fo.scheme = UpdateScheme::kSccOrdered;
  const FixpointResult ref = compute_departures(view, shifts, zeros(c), fo);
  ASSERT_TRUE(ref.converged) << what << ": baseline did not converge";
  for (const int threads : kThreadCounts) {
    ParallelFixpointOptions po;
    po.num_threads = threads;
    ParallelFixpoint engine(view, po);
    const FixpointResult par = engine.solve(shifts, zeros(c));
    ASSERT_TRUE(par.converged) << what << " threads=" << threads;
    ASSERT_EQ(par.departure, ref.departure)
        << what << " threads=" << threads << ": departures not bitwise equal";
    EXPECT_EQ(par.sweeps, ref.sweeps) << what << " threads=" << threads;
    EXPECT_EQ(par.updates, ref.updates) << what << " threads=" << threads;
  }
  // The analysis wiring inherits the property: full reports (slacks included)
  // built from equal fixpoints must compare equal field-for-field where
  // derived from departures.
  AnalysisOptions scalar_opt;
  scalar_opt.fixpoint.scheme = UpdateScheme::kSccOrdered;
  scalar_opt.check_hold = true;
  const TimingReport ref_rep = check_schedule(c, sch, scalar_opt);
  AnalysisOptions par_opt = scalar_opt;
  par_opt.num_threads = 2;
  const TimingReport par_rep = check_schedule(c, sch, par_opt);
  EXPECT_EQ(par_rep.feasible, ref_rep.feasible) << what;
  EXPECT_EQ(par_rep.fixpoint.departure, ref_rep.fixpoint.departure) << what;
  EXPECT_EQ(par_rep.worst_setup_slack, ref_rep.worst_setup_slack) << what;
  EXPECT_EQ(par_rep.worst_hold_slack, ref_rep.worst_hold_slack) << what;
}

TEST(ParallelDeterminism, TwoHundredFuzzSeeds) {
  // Same generator family the differential fuzzer uses; the schedule is the
  // always-convergent analytic one (every loop's mean hop cost is below
  // Tc/k — see generators.h), so all 200 seeds exercise the full solve.
  for (uint64_t seed = 0; seed < 200; ++seed) {
    circuits::SyntheticParams p;
    p.num_phases = 2 + static_cast<int>(seed % 3);       // 2..4 phases
    p.num_stages = 4 + static_cast<int>(seed % 5);       // 4..8 stages
    p.latches_per_stage = 2 + static_cast<int>(seed % 4);
    p.fanin = 1 + static_cast<int>(seed % 3);
    p.extra_long_edges = static_cast<int>(seed % 6);
    const Circuit c = circuits::synthetic_circuit(p, seed);
    // Tc > k * (dq + max_delay) gives every loop strictly negative gain.
    const ClockSchedule sch = symmetric_schedule(
        p.num_phases, 1.05 * p.num_phases * (p.dq + p.max_delay));
    expect_deterministic(c, sch, ("seed " + std::to_string(seed)).c_str());
  }
}

TEST(ParallelDeterminism, SingleGiantScc) {
  // A ring-closed pipeline: one nontrivial SCC spanning every latch. The
  // scheduler has exactly one shard — determinism must come from the kernel
  // and the member order alone.
  netlist::DeepPipelineConfig cfg;
  cfg.depth = 64;
  cfg.width = 16;
  cfg.fanin = 2;
  cfg.ring = true;
  const Circuit c = netlist::make_deep_pipeline(cfg);
  const TimingView view(c);
  ParallelFixpointOptions po;
  ParallelFixpoint probe(view, po);
  EXPECT_EQ(probe.num_components(), 1);
  expect_deterministic(
      c, netlist::generator_schedule(cfg.num_phases, cfg.dq, cfg.delay),
      "single-scc ring");
}

TEST(ParallelDeterminism, TenThousandComponentSoup) {
  // 10^4 independent rings + random cross edges: maximal scheduling freedom,
  // so any order-dependence in the engine would show up here as a
  // thread-count-dependent vector.
  netlist::SccSoupConfig cfg;
  cfg.num_sccs = 10000;
  cfg.scc_size = 3;
  cfg.cross_edges = 20000;
  cfg.seed = 7;
  const Circuit c = netlist::make_scc_soup(cfg);
  const TimingView view(c);
  const ShiftTable shifts(
      netlist::generator_schedule(cfg.num_phases, cfg.dq, cfg.delay));
  FixpointOptions fo;
  fo.scheme = UpdateScheme::kSccOrdered;
  const FixpointResult ref = compute_departures(view, shifts, zeros(c), fo);
  ASSERT_TRUE(ref.converged);
  for (const int threads : kThreadCounts) {
    ParallelFixpointOptions po;
    po.num_threads = threads;
    ParallelFixpoint engine(view, po);
    EXPECT_GE(engine.num_components(), 10000);
    const FixpointResult par = engine.solve(shifts, zeros(c));
    ASSERT_TRUE(par.converged) << threads;
    ASSERT_EQ(par.departure, ref.departure) << threads;
  }
}

TEST(ParallelDeterminism, AcyclicMeshWavefront) {
  // The mesh's diamond-shaped DAG exercises fork/join release patterns (two
  // successors per shard, two predecessors each) — the shape most likely to
  // expose a release-ordering bug.
  netlist::MeshConfig cfg;
  cfg.rows = 40;
  cfg.cols = 40;
  const Circuit c = netlist::make_mesh(cfg);
  expect_deterministic(
      c, netlist::generator_schedule(cfg.num_phases, cfg.dq, cfg.delay),
      "mesh 40x40");
}

TEST(ParallelDeterminism, RepeatedSolvesAreStable) {
  // Same engine object, same inputs, many solves: no run-to-run drift (a
  // stale-state or uninitialized-memory bug would show here).
  netlist::SccSoupConfig cfg;
  cfg.num_sccs = 50;
  cfg.scc_size = 5;
  cfg.cross_edges = 100;
  const Circuit c = netlist::make_scc_soup(cfg);
  const TimingView view(c);
  const ShiftTable shifts(
      netlist::generator_schedule(cfg.num_phases, cfg.dq, cfg.delay));
  ParallelFixpointOptions po;
  po.num_threads = 4;
  ParallelFixpoint engine(view, po);
  const FixpointResult first = engine.solve(shifts, zeros(c));
  ASSERT_TRUE(first.converged);
  for (int run = 0; run < 10; ++run) {
    const FixpointResult again = engine.solve(shifts, zeros(c));
    ASSERT_EQ(again.departure, first.departure) << run;
  }
}

}  // namespace
}  // namespace mintc::sta
