#include "sta/fixpoint.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/example1.h"

namespace mintc::sta {
namespace {

// The example-1 optimum at Δ41 = 80: Tc = 110, phi1 = [0,80), phi2 = [80,110).
ClockSchedule example1_schedule() { return ClockSchedule(110.0, {0.0, 80.0}, {80.0, 30.0}); }

TEST(Fixpoint, DepartureUpdateMatchesHandComputation) {
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule sch = example1_schedule();
  // With all departures zero: D1 candidate from L4: 0 + 10 + 80 + S(2,1)
  // = 90 + (80 - 0 - 110) = 60.
  const std::vector<double> zero(4, 0.0);
  EXPECT_NEAR(departure_update(c, sch, zero, 0), 60.0, 1e-9);
  // D2 from L1: 0 + 10 + 20 + S(1,2) = 30 + (0 - 80) = -50 -> clamp 0.
  EXPECT_NEAR(departure_update(c, sch, zero, 1), 0.0, 1e-9);
}

TEST(Fixpoint, LeastFixpointFromZero) {
  const Circuit c = circuits::example1(80.0);
  const FixpointResult r =
      compute_departures(c, example1_schedule(), std::vector<double>(4, 0.0));
  ASSERT_TRUE(r.converged);
  EXPECT_FALSE(r.diverged);
  // Hand-computed least fixpoint: D = (60, 10, 10, 0).
  EXPECT_NEAR(r.departure[0], 60.0, 1e-9);
  EXPECT_NEAR(r.departure[1], 10.0, 1e-9);
  EXPECT_NEAR(r.departure[2], 10.0, 1e-9);
  EXPECT_NEAR(r.departure[3], 0.0, 1e-9);
}

TEST(Fixpoint, SchemesAgreeOnLeastFixpoint) {
  const Circuit c = circuits::example1(120.0);
  const ClockSchedule sch(140.0, {0.0, 90.0}, {90.0, 50.0});
  std::vector<std::vector<double>> results;
  for (const auto scheme :
       {UpdateScheme::kJacobi, UpdateScheme::kGaussSeidel, UpdateScheme::kEventDriven}) {
    FixpointOptions opt;
    opt.scheme = scheme;
    const FixpointResult r = compute_departures(c, sch, std::vector<double>(4, 0.0), opt);
    ASSERT_TRUE(r.converged) << to_string(scheme);
    results.push_back(r.departure);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    for (size_t j = 0; j < results[i].size(); ++j) {
      EXPECT_NEAR(results[i][j], results[0][j], 1e-7);
    }
  }
}

TEST(Fixpoint, MonotoneFromBelowAndAbove) {
  // From zero the iteration climbs; from a large feasible point it slides
  // down; both are fixpoints of eq. (17).
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule sch = example1_schedule();
  const FixpointResult lo = compute_departures(c, sch, std::vector<double>(4, 0.0));
  const FixpointResult hi = compute_departures(c, sch, {70.0, 20.0, 20.0, 10.0});
  ASSERT_TRUE(lo.converged && hi.converged);
  for (int i = 0; i < 4; ++i) {
    const double dlo = lo.departure[static_cast<size_t>(i)];
    const double dhi = hi.departure[static_cast<size_t>(i)];
    EXPECT_LE(dlo, dhi + 1e-9);
    EXPECT_NEAR(departure_update(c, sch, lo.departure, i), dlo, 1e-7);
    EXPECT_NEAR(departure_update(c, sch, hi.departure, i), dhi, 1e-7);
  }
}

TEST(Fixpoint, DivergenceDetectedOnOverlappedLoop) {
  // Two latches on the SAME phase in a loop with full overlap: the max
  // equations have no finite fixpoint (positive loop gain through +S with
  // ... actually S(1,1) = -Tc; make delays exceed Tc so the loop gains).
  Circuit c("race", 1);
  c.add_latch("A", 1, 1.0, 2.0);
  c.add_latch("B", 1, 1.0, 2.0);
  c.add_path("A", "B", 30.0);
  c.add_path("B", "A", 30.0);
  // Tc = 10 < loop delay: each traversal adds (2+30-10) = 22.
  const ClockSchedule sch(10.0, {0.0}, {10.0});
  const FixpointResult r = compute_departures(c, sch, std::vector<double>(2, 0.0));
  EXPECT_TRUE(r.diverged);
  EXPECT_FALSE(r.converged);
}

TEST(Fixpoint, FlipFlopPinnedAtZero)  {
  Circuit c("ff", 2);
  c.add_latch("L", 1, 1.0, 2.0);
  c.add_flipflop("F", 2, 1.0, 2.0);
  c.add_path("L", "F", 5.0);
  c.add_path("F", "L", 5.0);
  const ClockSchedule sch(40.0, {0.0, 20.0}, {20.0, 20.0});
  const FixpointResult r = compute_departures(c, sch, std::vector<double>(2, 0.0));
  ASSERT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.departure[1], 0.0);
}

TEST(Fixpoint, ArrivalsMatchEq14) {
  const Circuit c = circuits::example1(80.0);
  const ClockSchedule sch = example1_schedule();
  const FixpointResult r = compute_departures(c, sch, std::vector<double>(4, 0.0));
  const std::vector<double> a = compute_arrivals(c, sch, r.departure);
  // A2 = D1 + 10 + 20 + S(1,2) = 60 + 30 - 80 = 10.
  EXPECT_NEAR(a[1], 10.0, 1e-9);
  // A1 = D4 + 10 + 80 + S(2,1) = 0 + 90 - 30 = 60.
  EXPECT_NEAR(a[0], 60.0, 1e-9);
}

TEST(Fixpoint, NoFaninLatchHasMinusInfArrival) {
  Circuit c("pi", 1);
  c.add_latch("A", 1, 1.0, 2.0);
  const ClockSchedule sch(10.0, {0.0}, {10.0});
  const std::vector<double> a = compute_arrivals(c, sch, {0.0});
  EXPECT_TRUE(std::isinf(a[0]));
  EXPECT_LT(a[0], 0.0);
}

TEST(Fixpoint, UpdateSchemeNames) {
  EXPECT_STREQ(to_string(UpdateScheme::kJacobi), "jacobi");
  EXPECT_STREQ(to_string(UpdateScheme::kGaussSeidel), "gauss-seidel");
  EXPECT_STREQ(to_string(UpdateScheme::kEventDriven), "event-driven");
}

TEST(Fixpoint, EventDrivenDoesFewerUpdatesOnSparseChange) {
  // A long pipeline where only the head moves: event-driven should touch
  // far fewer nodes than Jacobi sweeps do.
  Circuit c("pipe", 2);
  const int n = 40;
  for (int i = 0; i < n; ++i) {
    c.add_latch("L" + std::to_string(i), (i % 2) + 1, 1.0, 2.0);
  }
  // Delay exceeds the half-period slot so lateness accumulates down the
  // whole chain (D_i = 12*i) and the fixpoint takes n Jacobi sweeps.
  for (int i = 0; i + 1 < n; ++i) c.add_path(i, i + 1, 60.0);
  const ClockSchedule sch = symmetric_schedule(2, 100.0);

  FixpointOptions jac;
  jac.scheme = UpdateScheme::kJacobi;
  FixpointOptions evd;
  evd.scheme = UpdateScheme::kEventDriven;
  const FixpointResult a = compute_departures(c, sch, std::vector<double>(n, 0.0), jac);
  const FixpointResult b = compute_departures(c, sch, std::vector<double>(n, 0.0), evd);
  ASSERT_TRUE(a.converged && b.converged);
  EXPECT_LT(b.updates, a.updates);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(a.departure[static_cast<size_t>(i)], b.departure[static_cast<size_t>(i)],
                1e-9);
  }
}

}  // namespace
}  // namespace mintc::sta
