// AnalysisSession unit tests: the correctness contract (warm/cold/cached
// analyze() bit-identical to a fresh check_schedule of the current state),
// the undo log, derating composition, and the counter semantics.
#include "sta/session.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/example1.h"
#include "circuits/gaas.h"
#include "opt/mlp.h"
#include "sta/analysis.h"
#include "sta/corners.h"

namespace mintc::sta {
namespace {

// Exact ==, not NEAR: the session must reproduce a fresh analysis to the
// last bit no matter which path (cache, warm fixpoint, cold solve) it took.
void expect_reports_identical(const TimingReport& got, const TimingReport& want) {
  ASSERT_EQ(got.feasible, want.feasible);
  ASSERT_EQ(got.schedule_ok, want.schedule_ok);
  ASSERT_EQ(got.converged, want.converged);
  ASSERT_EQ(got.setup_ok, want.setup_ok);
  ASSERT_EQ(got.hold_ok, want.hold_ok);
  ASSERT_EQ(got.elements.size(), want.elements.size());
  for (size_t i = 0; i < want.elements.size(); ++i) {
    EXPECT_EQ(got.elements[i].departure, want.elements[i].departure) << "element " << i;
    EXPECT_EQ(got.elements[i].arrival, want.elements[i].arrival) << "element " << i;
    EXPECT_EQ(got.elements[i].setup_slack, want.elements[i].setup_slack) << "element " << i;
    EXPECT_EQ(got.elements[i].hold_slack, want.elements[i].hold_slack) << "element " << i;
  }
  ASSERT_EQ(got.fixpoint.departure.size(), want.fixpoint.departure.size());
  for (size_t i = 0; i < want.fixpoint.departure.size(); ++i) {
    EXPECT_EQ(got.fixpoint.departure[i], want.fixpoint.departure[i]) << "departure " << i;
  }
  EXPECT_EQ(got.worst_setup_slack, want.worst_setup_slack);
  EXPECT_EQ(got.worst_setup_element, want.worst_setup_element);
  EXPECT_EQ(got.worst_hold_slack, want.worst_hold_slack);
  EXPECT_EQ(got.worst_hold_element, want.worst_hold_element);
}

struct Fixture {
  Circuit circuit;
  ClockSchedule schedule;  // relaxed optimum: all loops have negative gain
  AnalysisOptions options;

  explicit Fixture(Circuit c) : circuit(std::move(c)) {
    const auto mlp = opt::minimize_cycle_time(circuit);
    EXPECT_TRUE(mlp);
    schedule = mlp->schedule.scaled(1.25);
    options.check_hold = true;
  }

  TimingReport fresh(const Circuit& c, const ClockSchedule& s) const {
    return check_schedule(c, s, options);
  }
};

TEST(AnalysisSession, ColdAnalyzeMatchesCheckSchedule) {
  const Fixture f(circuits::example1(80.0));
  AnalysisSession session(f.circuit, f.schedule, f.options);
  expect_reports_identical(session.analyze(), f.fresh(f.circuit, f.schedule));
  EXPECT_EQ(session.counters().analyses, 1);
  EXPECT_EQ(session.counters().warm_hits, 0);
  EXPECT_EQ(session.counters().cold_fallbacks, 0);  // first solve is not a fallback
}

TEST(AnalysisSession, CachedReportCountsAsWarmHit) {
  const Fixture f(circuits::example1(80.0));
  AnalysisSession session(f.circuit, f.schedule, f.options);
  session.analyze();
  session.analyze();  // nothing changed: served from cache
  EXPECT_EQ(session.counters().analyses, 2);
  EXPECT_EQ(session.counters().warm_hits, 1);
  EXPECT_EQ(session.counters().invalidations, 0);
}

TEST(AnalysisSession, DelayIncreaseWarmStartsAndBitMatches) {
  const Fixture f(circuits::gaas_datapath());
  AnalysisSession session(f.circuit, f.schedule, f.options);
  session.analyze();
  const double d0 = f.circuit.path(0).delay;
  session.set_path_delay(0, d0 * 1.05);
  Circuit mutated = f.circuit;
  mutated.set_path_delay(0, d0 * 1.05);
  expect_reports_identical(session.analyze(), f.fresh(mutated, f.schedule));
  EXPECT_EQ(session.counters().warm_hits, 1);
  EXPECT_EQ(session.counters().cold_fallbacks, 0);
  EXPECT_EQ(session.counters().invalidations, 1);
}

TEST(AnalysisSession, DelayDecreaseFallsBackColdAndBitMatches) {
  const Fixture f(circuits::gaas_datapath());
  AnalysisSession session(f.circuit, f.schedule, f.options);
  session.analyze();
  const double d0 = f.circuit.path(0).delay;
  session.set_path_delay(0, d0 * 0.5);
  Circuit mutated = f.circuit;
  mutated.set_path_delay(0, d0 * 0.5);
  expect_reports_identical(session.analyze(), f.fresh(mutated, f.schedule));
  EXPECT_EQ(session.counters().warm_hits, 0);
  EXPECT_EQ(session.counters().cold_fallbacks, 1);
}

TEST(AnalysisSession, ScheduleShrinkWarmStartsGrowFallsBack) {
  const Fixture f(circuits::gaas_datapath());
  AnalysisSession session(f.circuit, f.schedule, f.options);
  session.analyze();

  // Scaling the schedule DOWN scales every (negative) shift up toward zero:
  // monotone-nondecreasing, warm-start eligible. 1.25 * 0.99 stays above
  // the optimum, so the fixpoint still converges.
  const ClockSchedule shrunk = f.schedule.scaled(0.99);
  session.set_schedule(shrunk);
  expect_reports_identical(session.analyze(), f.fresh(f.circuit, shrunk));
  EXPECT_EQ(session.counters().warm_hits, 1);
  EXPECT_EQ(session.counters().cold_fallbacks, 0);

  // Scaling UP shrinks cross-cycle shifts: cold fallback, same contract.
  const ClockSchedule grown = f.schedule.scaled(1.1);
  session.set_schedule(grown);
  expect_reports_identical(session.analyze(), f.fresh(f.circuit, grown));
  EXPECT_EQ(session.counters().cold_fallbacks, 1);
}

TEST(AnalysisSession, DeratingMatchesDerateComposedFromPristine) {
  const Fixture f(circuits::gaas_datapath());
  AnalysisSession session(f.circuit, f.schedule, f.options);
  session.analyze();
  // Corners compose from the pristine reference, not cumulatively: applying
  // slow then fast must equal derate(original, fast).
  session.apply_derating(1.1, 1.1);
  session.analyze();
  session.apply_derating(0.9, 0.9);
  const Corner fast{"fast", 0.9, 0.9};
  expect_reports_identical(session.analyze(), f.fresh(derate(f.circuit, fast), f.schedule));
}

TEST(AnalysisSession, StructuralEditRebuildsAndBitMatches) {
  const Fixture f(circuits::gaas_datapath());
  AnalysisSession session(f.circuit, f.schedule, f.options);
  session.analyze();
  session.remove_path(0);
  expect_reports_identical(session.analyze(), f.fresh(session.circuit(), f.schedule));
  EXPECT_EQ(session.counters().cold_fallbacks, 1);

  session.remove_element(0);
  expect_reports_identical(session.analyze(), f.fresh(session.circuit(), f.schedule));
  EXPECT_EQ(session.counters().cold_fallbacks, 2);
}

TEST(AnalysisSession, UndoRoundTripRestoresEverythingBitwise) {
  const Fixture f(circuits::gaas_datapath());
  AnalysisSession session(f.circuit, f.schedule, f.options);
  const TimingReport original = session.analyze();  // copy

  const size_t mark = session.mark();
  session.set_path_delay(1, f.circuit.path(1).delay + 0.7);
  session.set_element_dq(0, f.circuit.element(0).dq + 0.3);
  session.set_schedule(f.schedule.scaled(1.3));
  session.remove_path(0);
  session.remove_element(0);
  session.analyze();
  session.undo_to(mark);

  EXPECT_EQ(session.circuit().num_paths(), f.circuit.num_paths());
  EXPECT_EQ(session.circuit().num_elements(), f.circuit.num_elements());
  for (int p = 0; p < f.circuit.num_paths(); ++p) {
    EXPECT_EQ(session.circuit().path(p).delay, f.circuit.path(p).delay) << "path " << p;
    EXPECT_EQ(session.circuit().path(p).from, f.circuit.path(p).from) << "path " << p;
    EXPECT_EQ(session.circuit().path(p).to, f.circuit.path(p).to) << "path " << p;
  }
  expect_reports_identical(session.analyze(), original);
}

TEST(AnalysisSession, HoldVectorReusedAcrossMaxSideEdits) {
  const Fixture f(circuits::gaas_datapath());
  AnalysisSession session(f.circuit, f.schedule, f.options);
  session.analyze();
  // A max-delay-only edit leaves the hold-side min-fixpoint untouched.
  session.set_path_delay(0, f.circuit.path(0).delay * 1.02);
  session.analyze();
  EXPECT_GE(session.counters().hold_reuses, 1);

  // A min-delay edit invalidates it.
  const long reuses = session.counters().hold_reuses;
  session.set_path_min_delay(0, f.circuit.path(0).min_delay * 0.5);
  Circuit mutated = f.circuit;
  mutated.set_path_delay(0, f.circuit.path(0).delay * 1.02);
  mutated.set_path_min_delay(0, f.circuit.path(0).min_delay * 0.5);
  expect_reports_identical(session.analyze(), f.fresh(mutated, f.schedule));
  EXPECT_EQ(session.counters().hold_reuses, reuses);
}

TEST(AnalysisSession, SetterNoOpsDoNotInvalidate) {
  const Fixture f(circuits::example1(80.0));
  AnalysisSession session(f.circuit, f.schedule, f.options);
  session.analyze();
  session.set_path_delay(0, f.circuit.path(0).delay);  // unchanged value
  session.set_schedule(f.schedule);                    // identical schedule
  session.analyze();
  EXPECT_EQ(session.counters().invalidations, 0);
  EXPECT_EQ(session.counters().warm_hits, 1);  // pure cache hit
}

}  // namespace
}  // namespace mintc::sta
