// The LEADOUT-inspired SCC-ordered update scheme.
#include <gtest/gtest.h>

#include "circuits/example1.h"
#include "circuits/example2.h"
#include "circuits/gaas.h"
#include "opt/mlp.h"
#include "sta/analysis.h"
#include "sta/fixpoint.h"

namespace mintc::sta {
namespace {

TEST(SccOrdered, AgreesWithOtherSchemesEverywhere) {
  for (const Circuit& c : {circuits::example1(120.0), circuits::example2(),
                           circuits::gaas_datapath()}) {
    const auto r = opt::minimize_cycle_time(c);
    ASSERT_TRUE(r) << c.name();
    const ClockSchedule sch = r->schedule.scaled(1.02);
    FixpointOptions gs;
    gs.scheme = UpdateScheme::kGaussSeidel;
    FixpointOptions scc;
    scc.scheme = UpdateScheme::kSccOrdered;
    const std::vector<double> zero(static_cast<size_t>(c.num_elements()), 0.0);
    const FixpointResult a = compute_departures(c, sch, zero, gs);
    const FixpointResult b = compute_departures(c, sch, zero, scc);
    ASSERT_TRUE(a.converged && b.converged) << c.name();
    for (int i = 0; i < c.num_elements(); ++i) {
      EXPECT_NEAR(a.departure[static_cast<size_t>(i)], b.departure[static_cast<size_t>(i)],
                  1e-9)
          << c.name() << " " << c.element(i).name;
    }
  }
}

TEST(SccOrdered, FewerUpdatesOnChainOfLoops) {
  // Three feedback loops in series: global Gauss-Seidel re-sweeps everything
  // until the last loop settles; SCC ordering settles each loop once.
  Circuit c("chain", 2);
  const int loops = 3;
  const int per = 6;
  for (int g = 0; g < loops; ++g) {
    for (int i = 0; i < per; ++i) {
      c.add_latch("G" + std::to_string(g) + "L" + std::to_string(i), (i % 2) + 1, 1.0, 2.0);
    }
    const int base = g * per;
    for (int i = 0; i < per; ++i) c.add_path(base + i, base + (i + 1) % per, 55.0);
    if (g > 0) c.add_path(base - 1, base, 55.0);  // bridge from previous loop
  }
  const ClockSchedule sch = symmetric_schedule(2, 400.0);
  FixpointOptions gs;
  gs.scheme = UpdateScheme::kGaussSeidel;
  FixpointOptions scc;
  scc.scheme = UpdateScheme::kSccOrdered;
  const std::vector<double> zero(static_cast<size_t>(c.num_elements()), 0.0);
  const FixpointResult a = compute_departures(c, sch, zero, gs);
  const FixpointResult b = compute_departures(c, sch, zero, scc);
  ASSERT_TRUE(a.converged && b.converged);
  EXPECT_LE(b.updates, a.updates);
  for (int i = 0; i < c.num_elements(); ++i) {
    EXPECT_NEAR(a.departure[static_cast<size_t>(i)], b.departure[static_cast<size_t>(i)],
                1e-9);
  }
}

TEST(SccOrdered, DetectsDivergence) {
  Circuit c("race", 1);
  c.add_latch("A", 1, 1.0, 2.0);
  c.add_latch("B", 1, 1.0, 2.0);
  c.add_path("A", "B", 30.0);
  c.add_path("B", "A", 30.0);
  FixpointOptions opt;
  opt.scheme = UpdateScheme::kSccOrdered;
  const FixpointResult r =
      compute_departures(c, ClockSchedule(10.0, {0.0}, {10.0}), {0.0, 0.0}, opt);
  EXPECT_TRUE(r.diverged);
  EXPECT_FALSE(r.converged);
}

TEST(SccOrdered, WorksInsideMlp) {
  opt::MlpOptions options;
  options.fixpoint.scheme = UpdateScheme::kSccOrdered;
  const auto r = opt::minimize_cycle_time(circuits::example1(80.0), options);
  ASSERT_TRUE(r);
  EXPECT_NEAR(r->min_cycle, 110.0, 1e-6);
  EXPECT_TRUE(opt::satisfies_p1(circuits::example1(80.0), r->schedule, r->departure));
}

TEST(SccOrdered, SchemeName) {
  EXPECT_STREQ(to_string(UpdateScheme::kSccOrdered), "scc-ordered");
}

}  // namespace
}  // namespace mintc::sta
