// The sweep-cap bugfix: hitting FixpointOptions::max_sweeps must surface as
// a distinct non-converged status carrying the outstanding residual, never
// as a silently truncated "result"; and the default budget now scales with
// the element count instead of capping million-latch chains at 100000.
#include <gtest/gtest.h>

#include <limits>

#include "circuits/example2.h"
#include "netlist/generators.h"
#include "sta/analysis.h"
#include "sta/fixpoint.h"

namespace mintc::sta {
namespace {

Circuit two_latch_ring(double delay) {
  Circuit c("ring2", 2);
  c.add_latch("A", 1, 1.0, 2.0);
  c.add_latch("B", 2, 1.0, 2.0);
  c.add_path("A", "B", delay);
  c.add_path("B", "A", delay);
  return c;
}

// A convergent ring that genuinely needs ~l sweeps from the zero start.
// Under symmetric_schedule(2, 100) each cross-phase edge carries shift -50
// and every latch has dq = 2, so the chain edges i -> i-1 (delay 53) each add
// +5 while the closing edge 0 -> l-1 (delay 0) subtracts 48: the loop gain is
// 5(l-1) - 48 < 0 for small l, but the +5 chain runs AGAINST element order,
// so every scheme propagates one hop per sweep (and the event-driven budget
// of max_sweeps * l accepted updates is quadratically short).
Circuit slow_ring(int l) {
  Circuit c("slow_ring", 2);
  for (int i = 0; i < l; ++i) {
    c.add_latch("n" + std::to_string(i), (i % 2) + 1, 1.0, 2.0);
  }
  for (int i = 1; i < l; ++i) c.add_path(i, i - 1, 53.0);
  c.add_path(0, l - 1, 0.0);
  return c;
}

TEST(SweepCap, EffectiveBudgetScalesWithElements) {
  FixpointOptions opt;  // default max_sweeps = 0 -> auto
  // Small circuits keep the historical floor.
  EXPECT_EQ(opt.effective_max_sweeps(0), 100000);
  EXPECT_EQ(opt.effective_max_sweeps(1000), 100000);
  // Beyond the floor the budget grows with l: a depth-l chain needs ~l
  // Jacobi sweeps before information crosses it even once.
  EXPECT_EQ(opt.effective_max_sweeps(1000000), 4 * 1000000 + 1024);
  // And saturates instead of overflowing int.
  EXPECT_EQ(opt.effective_max_sweeps(std::numeric_limits<int>::max()),
            std::numeric_limits<int>::max());
  // An explicit setting is honored verbatim.
  opt.max_sweeps = 7;
  EXPECT_EQ(opt.effective_max_sweeps(1000000), 7);
}

TEST(SweepCap, SweepLimitIsADistinctStatusWithResidual) {
  // A convergent ring starved to a 1-sweep budget: the solve must report
  // kSweepLimit (not converged, not diverged) and a positive residual.
  const Circuit c = slow_ring(6);
  const ClockSchedule sch = symmetric_schedule(2, 100.0);
  for (const UpdateScheme scheme :
       {UpdateScheme::kJacobi, UpdateScheme::kGaussSeidel, UpdateScheme::kSccOrdered,
        UpdateScheme::kEventDriven}) {
    FixpointOptions opt;
    opt.scheme = scheme;
    opt.max_sweeps = 1;
    const FixpointResult r =
        compute_departures(c, sch, std::vector<double>(6, 0.0), opt);
    EXPECT_FALSE(r.converged) << to_string(scheme);
    EXPECT_FALSE(r.diverged) << to_string(scheme);
    EXPECT_EQ(r.status, FixpointStatus::kSweepLimit) << to_string(scheme);
    EXPECT_TRUE(r.hit_sweep_limit()) << to_string(scheme);
    EXPECT_GT(r.residual, 0.0) << to_string(scheme);
  }
}

TEST(SweepCap, ConvergedAndDivergedStatusesAreLabelled) {
  const Circuit c = two_latch_ring(30.0);
  const FixpointResult ok =
      compute_departures(c, symmetric_schedule(2, 100.0), {0.0, 0.0});
  EXPECT_EQ(ok.status, FixpointStatus::kConverged);
  EXPECT_FALSE(ok.hit_sweep_limit());
  EXPECT_EQ(ok.residual, 0.0);

  // Overlapping single-phase schedule with a fat loop: positive gain.
  const FixpointResult bad =
      compute_departures(c, ClockSchedule(10.0, {0.0, 0.0}, {10.0, 10.0}), {0.0, 0.0});
  EXPECT_EQ(bad.status, FixpointStatus::kDiverged);
  EXPECT_TRUE(bad.diverged);
  EXPECT_FALSE(bad.hit_sweep_limit());
}

TEST(SweepCap, ResidualShrinksWithBudget) {
  // More budget -> closer to the fixpoint: the reported residual must be
  // monotonically nonincreasing in max_sweeps for a monotone iteration.
  const Circuit c = slow_ring(8);
  const ClockSchedule sch = symmetric_schedule(2, 100.0);
  double last = std::numeric_limits<double>::infinity();
  int starved = 0;
  for (const int budget : {1, 2, 4, 8}) {
    FixpointOptions opt;
    opt.scheme = UpdateScheme::kJacobi;
    opt.max_sweeps = budget;
    const FixpointResult r =
        compute_departures(c, sch, std::vector<double>(8, 0.0), opt);
    if (r.converged) break;
    ++starved;
    EXPECT_LE(r.residual, last) << budget;
    last = r.residual;
  }
  EXPECT_GE(starved, 2);  // the ring is deep enough that small budgets starve
}

TEST(SweepCap, DeepPipelineConvergesUnderTheAutoBudget) {
  // The bug this fix exists for: a chain deeper than the old fixed default
  // would silently "finish" under Jacobi at 100000 sweeps. The auto budget
  // must cover it. (Depth here is reduced from 10^6 to keep tier-1 fast; the
  // budget math is exercised identically and the full scale runs in
  // bench_parallel_fixpoint.)
  netlist::DeepPipelineConfig cfg;
  cfg.depth = 2000;
  cfg.width = 1;
  cfg.fanin = 1;
  const Circuit c = netlist::make_deep_pipeline(cfg);
  const ClockSchedule sch =
      netlist::generator_schedule(cfg.num_phases, cfg.dq, cfg.delay);
  FixpointOptions opt;
  opt.scheme = UpdateScheme::kGaussSeidel;
  const FixpointResult r = compute_departures(
      c, sch, std::vector<double>(static_cast<size_t>(c.num_elements()), 0.0), opt);
  EXPECT_EQ(r.status, FixpointStatus::kConverged) << "residual " << r.residual;
}

TEST(SweepCap, EarlyDeparturesUseTheAutoBudgetToo) {
  // Regression: compute_early_departures used to read max_sweeps raw; with
  // the new auto default (0) that meant ZERO sweeps and instant "success".
  const Circuit c = circuits::example2();
  const auto sch = symmetric_schedule(c.num_phases(), 400.0);
  const FixpointResult early = compute_early_departures(c, sch);
  EXPECT_TRUE(early.converged);
  EXPECT_EQ(early.status, FixpointStatus::kConverged);
  EXPECT_GT(early.sweeps, 0);
}

TEST(SweepCap, ReportDistinguishesSweepLimitFromDivergence) {
  const Circuit c = slow_ring(6);
  AnalysisOptions opt;
  opt.fixpoint.max_sweeps = 1;
  const TimingReport rep = check_schedule(c, symmetric_schedule(2, 100.0), opt);
  EXPECT_FALSE(rep.converged);
  const std::string text = rep.to_string(c);
  EXPECT_NE(text.find("sweep budget"), std::string::npos) << text;
  EXPECT_NE(text.find("residual"), std::string::npos) << text;
  EXPECT_EQ(text.find("positive latch loop"), std::string::npos) << text;
}

}  // namespace
}  // namespace mintc::sta
