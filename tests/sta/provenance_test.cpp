// Constraint provenance: pins the known critical chains of Example 2 and the
// GaAs datapath at their optimal schedules, plus unit coverage for the
// arg-max / tightness reconstruction itself.
#include "sta/provenance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "circuits/example2.h"
#include "circuits/gaas.h"
#include "opt/mlp.h"
#include "sta/analysis.h"

namespace mintc::sta {
namespace {

bool has_tight(const ProvenanceReport& rep, const std::string& name) {
  return std::any_of(rep.tight.begin(), rep.tight.end(),
                     [&](const TightConstraint& t) { return t.name == name; });
}

ProvenanceReport provenance_at_optimum(const Circuit& c, double* min_cycle = nullptr) {
  const auto r = opt::minimize_cycle_time(c);
  EXPECT_TRUE(r.has_value());
  if (min_cycle) *min_cycle = r->min_cycle;
  AnalysisOptions aopt;
  aopt.provenance = true;
  const TimingReport rep = check_schedule(c, r->schedule, aopt);
  EXPECT_TRUE(rep.feasible);
  return rep.provenance;
}

TEST(ProvenanceTest, Example2CriticalChainRunsThroughTheLongStage) {
  const Circuit c = circuits::example2();
  double tc = 0.0;
  const ProvenanceReport rep = provenance_at_optimum(c, &tc);
  EXPECT_NEAR(tc, 70.0, 1e-6);
  ASSERT_FALSE(rep.empty());
  // The worst-slack latch traces back through the coupling path X23 and the
  // 58 ns stage M12 to P1, which departs at its phase edge (the 0-clamp).
  EXPECT_EQ(rep.chain_to_string(c), "Q3(phi3) <- X23 <- P2(phi2) <- M12 <- P1(phi1)");
  EXPECT_FALSE(rep.chain_is_loop);
  ASSERT_EQ(rep.critical_chain.size(), 3u);
  ASSERT_EQ(rep.critical_paths.size(), 2u);
  EXPECT_EQ(rep.critical_chain.back(), c.find_element("P1").value());
}

TEST(ProvenanceTest, Example2TightConstraintsNameTheBindingRows) {
  const Circuit c = circuits::example2();
  const ProvenanceReport rep = provenance_at_optimum(c);
  EXPECT_TRUE(has_tight(rep, "L2[P1->P2 via M12]"));
  EXPECT_TRUE(has_tight(rep, "L2[P2->Q3 via X23]"));
  EXPECT_TRUE(has_tight(rep, "L3[P1]"));
  EXPECT_TRUE(has_tight(rep, "C4[s(phi1)=0]"));
  EXPECT_TRUE(has_tight(rep, "C3[phi2 nonoverlap phi1]"));
  // A comfortably slack latch must not appear tight.
  EXPECT_FALSE(has_tight(rep, "L1[R2]"));
  EXPECT_FALSE(has_tight(rep, "L3[P2]"));
}

TEST(ProvenanceTest, Example2OriginsPointAtTheArgMaxEdges) {
  const Circuit c = circuits::example2();
  const ProvenanceReport rep = provenance_at_optimum(c);
  const int p1 = c.find_element("P1").value();
  const int p2 = c.find_element("P2").value();
  ASSERT_EQ(rep.origins.size(), static_cast<size_t>(c.num_elements()));
  // P1 departs at its phase edge: the 0-clamp, no incoming arg-max edge.
  EXPECT_EQ(rep.origins[static_cast<size_t>(p1)].via_path, -1);
  EXPECT_EQ(rep.origins[static_cast<size_t>(p1)].from, -1);
  // P2's departure is produced by the M12 edge out of P1.
  const DepartureOrigin& o2 = rep.origins[static_cast<size_t>(p2)];
  ASSERT_GE(o2.via_path, 0);
  EXPECT_EQ(o2.from, p1);
  EXPECT_EQ(c.path(o2.via_path).label, "M12");
  EXPECT_GT(o2.term, 0.0);
}

TEST(ProvenanceTest, GaasCriticalChainIsTheLoadPath) {
  // The published-shape schedule (min duty cycle, phi1 anchored at the cycle
  // origin) — the same shape bench_fig11_gaas_datapath verifies.
  const Circuit c = circuits::gaas_datapath();
  const auto r = opt::minimize_cycle_time(c);
  ASSERT_TRUE(r.has_value());
  const auto refined =
      opt::refine_schedule(c, r->min_cycle, opt::SecondaryObjective::kMinTotalWidth);
  ASSERT_TRUE(refined.has_value());
  ClockSchedule sch = refined->schedule;
  sch.width[0] += sch.start[0];
  sch.start[0] = 0.0;
  AnalysisOptions aopt;
  aopt.provenance = true;
  const TimingReport report = check_schedule(c, sch, aopt);
  ASSERT_TRUE(report.feasible);
  const ProvenanceReport& rep = report.provenance;
  // The published bottleneck: instruction fetch -> address generation ->
  // data-cache load, ending at the load aligner. IAddr departs at its phase
  // edge, so the chain terminates there.
  EXPECT_EQ(rep.chain_to_string(c),
            "LoadAl(phi1) <- DCache <- DAddr(phi2) <- AGen.off <- IR(phi1) <- ICache <- "
            "IAddr(phi2)");
  EXPECT_FALSE(rep.chain_is_loop);
  EXPECT_TRUE(has_tight(rep, "L1[LoadAl]"));
  EXPECT_TRUE(has_tight(rep, "L1[OpA]"));
  EXPECT_TRUE(has_tight(rep, "L2[DAddr->LoadAl via DCache]"));
  EXPECT_TRUE(has_tight(rep, "L3[PreCtl]"));
  EXPECT_TRUE(has_tight(rep, "C4[s(phi1)=0]"));
}

TEST(ProvenanceTest, ArgMaxCycleIsReportedAsALoop) {
  // Two latches whose arg-max edges point at each other. At this circuit's
  // optimum both loop terms are exactly 0, so ANY constant vector solves
  // eq. (17) on the loop; provenance must recognise the cycle instead of
  // walking forever.
  Circuit c("loop2", 2);
  c.add_latch("A", 1, 1.0, 2.0);
  c.add_latch("B", 2, 1.0, 2.0);
  c.add_path("A", "B", 20.0, 0.0, "fwd");
  c.add_path("B", "A", 20.0, 0.0, "back");
  const auto r = opt::minimize_cycle_time(c);
  ASSERT_TRUE(r.has_value());
  const ProvenanceReport rep =
      constraint_provenance(c, r->schedule, {3.0, 3.0});
  EXPECT_TRUE(rep.chain_is_loop);
  EXPECT_EQ(rep.critical_chain.size(), 2u);
  EXPECT_EQ(rep.critical_paths.size(), 2u);
  EXPECT_NE(rep.chain_to_string(c).find("(loop)"), std::string::npos);
}

TEST(ProvenanceTest, FlipFlopEndpointsAreAlwaysClampOrigins) {
  // GaAs's three flip-flops (PC, Bcond, Exc): their departures are pinned
  // to the clock edge, so eq. (17) never attributes an arg-max edge to them
  // — every F/F origin must be the clamp, regardless of fanin depth.
  const Circuit c = circuits::gaas_datapath();
  const ProvenanceReport rep = provenance_at_optimum(c);
  ASSERT_EQ(rep.origins.size(), static_cast<size_t>(c.num_elements()));
  int ffs_seen = 0;
  for (const std::string name : {"PC", "Bcond", "Exc"}) {
    const auto id = c.find_element(name);
    ASSERT_TRUE(id.has_value()) << name;
    const DepartureOrigin& origin = rep.origins[static_cast<size_t>(*id)];
    EXPECT_EQ(c.element(*id).kind, ElementKind::kFlipFlop) << name;
    EXPECT_EQ(origin.via_path, -1) << name;
    EXPECT_EQ(origin.from, -1) << name;
    EXPECT_DOUBLE_EQ(origin.term, 0.0) << name;
    ++ffs_seen;
  }
  EXPECT_EQ(ffs_seen, 3);
  // And no latch's arg-max chain may pass *through* a flip-flop: any origin
  // edge out of an F/F would carry a pinned 0 departure, i.e. it behaves as
  // a chain terminator exactly like the clamp.
  for (const DepartureOrigin& origin : rep.origins) {
    if (origin.from < 0) continue;
    if (c.element(origin.from).kind == ElementKind::kFlipFlop) {
      EXPECT_EQ(rep.origins[static_cast<size_t>(origin.from)].via_path, -1);
    }
  }
}

TEST(ProvenanceTest, SingleLatchSelfLoopDegenerateCircuit) {
  // The smallest possible feedback circuit: one latch feeding itself. The
  // provenance walk must terminate (clamp or single-element loop), never
  // spin on the self-edge.
  Circuit c("self1", 1);
  c.add_latch("L", 1, 1.0, 2.0);
  c.add_path("L", "L", 10.0, 0.0, "self");
  const auto r = opt::minimize_cycle_time(c);
  ASSERT_TRUE(r.has_value());
  AnalysisOptions aopt;
  aopt.provenance = true;
  const TimingReport rep = check_schedule(c, r->schedule, aopt);
  ASSERT_TRUE(rep.feasible);
  ASSERT_EQ(rep.provenance.origins.size(), 1u);
  const DepartureOrigin& origin = rep.provenance.origins[0];
  if (origin.via_path >= 0) {
    // Self-edge arg-max: the chain is the one-element loop through it.
    EXPECT_EQ(origin.from, 0);
    EXPECT_TRUE(rep.provenance.chain_is_loop);
    EXPECT_EQ(rep.provenance.critical_chain.size(), 1u);
    EXPECT_EQ(rep.provenance.critical_paths.size(), 1u);
  } else {
    // 0-clamped: a one-element chain ending at the clamp.
    EXPECT_FALSE(rep.provenance.chain_is_loop);
    EXPECT_EQ(rep.provenance.critical_chain.size(), 1u);
    EXPECT_TRUE(rep.provenance.critical_paths.empty());
  }
  // Either way the renderer must not loop forever.
  EXPECT_FALSE(rep.provenance.chain_to_string(c).empty());
}

TEST(ProvenanceTest, MismatchedDepartureSizeYieldsEmptyReport) {
  const Circuit c = circuits::example2();
  const auto r = opt::minimize_cycle_time(c);
  ASSERT_TRUE(r.has_value());
  const ProvenanceReport rep = constraint_provenance(c, r->schedule, {1.0, 2.0});
  EXPECT_TRUE(rep.empty());
}

TEST(ProvenanceTest, AnalysisSkipsProvenanceUnlessAsked) {
  const Circuit c = circuits::example2();
  const auto r = opt::minimize_cycle_time(c);
  ASSERT_TRUE(r.has_value());
  const TimingReport rep = check_schedule(c, r->schedule);  // default options
  EXPECT_TRUE(rep.provenance.empty());
  // And the full report renders the provenance section only when present.
  EXPECT_EQ(rep.to_string(c).find("tight constraints"), std::string::npos);
}

TEST(ProvenanceTest, ReportRendersTableAndChain) {
  const Circuit c = circuits::example2();
  const ProvenanceReport rep = provenance_at_optimum(c);
  const std::string text = rep.to_string(c);
  EXPECT_NE(text.find("tight constraints"), std::string::npos);
  EXPECT_NE(text.find("L2[P1->P2 via M12]"), std::string::npos);
  EXPECT_NE(text.find("critical chain: Q3(phi3)"), std::string::npos);
}

}  // namespace
}  // namespace mintc::sta
