#include <gtest/gtest.h>

#include "circuits/example1.h"
#include "circuits/synthetic.h"
#include "opt/mlp.h"
#include "sta/fixpoint.h"

namespace mintc::sta {
namespace {

// Full reference solve from zero.
std::vector<double> reference(const Circuit& c, const ClockSchedule& sch) {
  const FixpointResult r = compute_departures(
      c, sch, std::vector<double>(static_cast<size_t>(c.num_elements()), 0.0));
  EXPECT_TRUE(r.converged);
  return r.departure;
}

TEST(Incremental, IncreaseMatchesFullRecompute) {
  Circuit c = circuits::example1(80.0);
  const ClockSchedule sch(150.0, {0.0, 100.0}, {100.0, 50.0});  // slack everywhere
  const std::vector<double> before = reference(c, sch);

  const int ld = circuits::example1_ld_path();
  const double old_delay = c.path(ld).delay;
  c.set_path_delay(ld, old_delay + 25.0);
  const FixpointResult inc = incremental_update(c, sch, before, ld, old_delay);
  ASSERT_TRUE(inc.converged);
  const std::vector<double> full = reference(c, sch);
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(inc.departure[i], full[i], 1e-9) << i;
  }
}

TEST(Incremental, DecreaseFallsBackAndMatches) {
  Circuit c = circuits::example1(120.0);
  const ClockSchedule sch(160.0, {0.0, 100.0}, {100.0, 60.0});
  const std::vector<double> before = reference(c, sch);
  const int ld = circuits::example1_ld_path();
  const double old_delay = c.path(ld).delay;
  c.set_path_delay(ld, 40.0);
  const FixpointResult inc = incremental_update(c, sch, before, ld, old_delay);
  ASSERT_TRUE(inc.converged);
  const std::vector<double> full = reference(c, sch);
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(inc.departure[i], full[i], 1e-9) << i;
  }
}

TEST(Incremental, TouchesFewerNodesThanFullSolve) {
  // A wide synthetic circuit: bumping one path must not re-visit everything.
  circuits::SyntheticParams p;
  p.num_phases = 2;
  p.num_stages = 10;
  p.latches_per_stage = 4;
  Circuit c = circuits::synthetic_circuit(p, 12);
  const auto r = opt::minimize_cycle_time(c);
  ASSERT_TRUE(r.has_value());
  const ClockSchedule sch = r->schedule.scaled(1.3);  // roomy
  const std::vector<double> before = reference(c, sch);

  const double old_delay = c.path(0).delay;
  c.set_path_delay(0, old_delay + 1.0);  // small bump, localized effect
  const FixpointResult inc = incremental_update(c, sch, before, 0, old_delay);
  ASSERT_TRUE(inc.converged);
  FixpointOptions evd;
  evd.scheme = UpdateScheme::kEventDriven;
  const FixpointResult full = compute_departures(
      c, sch, std::vector<double>(static_cast<size_t>(c.num_elements()), 0.0), evd);
  EXPECT_LT(inc.updates, full.updates);
  for (size_t i = 0; i < full.departure.size(); ++i) {
    EXPECT_NEAR(inc.departure[i], full.departure[i], 1e-9) << i;
  }
}

TEST(Incremental, DivergenceDetectedOnRunawayIncrease) {
  Circuit c("race", 1);
  c.add_latch("A", 1, 1.0, 2.0);
  c.add_latch("B", 1, 1.0, 2.0);
  c.add_path("A", "B", 1.0);
  c.add_path("B", "A", 1.0);
  const ClockSchedule sch(10.0, {0.0}, {10.0});
  const std::vector<double> before = reference(c, sch);  // feasible: tiny delays
  c.set_path_delay(0, 30.0);  // now the loop gains every traversal
  const FixpointResult inc = incremental_update(c, sch, before, 0, 1.0);
  EXPECT_TRUE(inc.diverged);
}

TEST(Incremental, NoChangeIsCheap) {
  Circuit c = circuits::example1(80.0);
  const ClockSchedule sch(150.0, {0.0, 100.0}, {100.0, 50.0});
  const std::vector<double> before = reference(c, sch);
  const FixpointResult inc =
      incremental_update(c, sch, before, 0, c.path(0).delay);  // same delay
  ASSERT_TRUE(inc.converged);
  EXPECT_LE(inc.updates, 2);
}

}  // namespace
}  // namespace mintc::sta
