// Short-path (hold) analysis — the Unger-style early-arrival problem the
// paper cites as Section II context; implemented as an extension.
#include <gtest/gtest.h>

#include <cmath>

#include "sta/analysis.h"

namespace mintc::sta {
namespace {

// A(phi1) -> B(phi2), Tc=100, phi1=[0,50), phi2=[50,100).
// Earliest next-token arrival at B, measured from phi2's start:
//   Tc + d_A + dq_min(A) + min_delay + S(1,2) = 100 + 0 + 1 + m - 50.
// Latch hold requirement: arrival >= T_2 + hold = 50 + hold.
Circuit hold_circuit(double min_delay, double hold) {
  Circuit c("hold", 2);
  Element a;
  a.name = "A";
  a.phase = 1;
  a.setup = 1.0;
  a.dq = 2.0;
  a.dq_min = 1.0;
  c.add_element(a);
  Element b;
  b.name = "B";
  b.phase = 2;
  b.setup = 1.0;
  b.dq = 2.0;
  b.hold = hold;
  c.add_element(b);
  c.add_path("A", "B", 30.0, min_delay);
  return c;
}

const ClockSchedule kSched(100.0, {0.0, 50.0}, {50.0, 50.0});

AnalysisOptions with_hold() {
  AnalysisOptions o;
  o.check_hold = true;
  return o;
}

TEST(Hold, SlackComputedExactly) {
  // min_delay = 10: earliest next arrival = 100+1+10-50 = 61;
  // requirement = 50 + 5 = 55; slack = +6.
  const TimingReport rep = check_schedule(hold_circuit(10.0, 5.0), kSched, with_hold());
  EXPECT_TRUE(rep.feasible);
  EXPECT_NEAR(rep.elements[1].hold_slack, 6.0, 1e-9);
  EXPECT_NEAR(rep.worst_hold_slack, 6.0, 1e-9);
  EXPECT_EQ(rep.worst_hold_element, 1);
}

TEST(Hold, ViolationDetected) {
  // min_delay = 2: earliest = 53 < 55 -> slack -2.
  const TimingReport rep = check_schedule(hold_circuit(2.0, 5.0), kSched, with_hold());
  EXPECT_FALSE(rep.feasible);
  EXPECT_FALSE(rep.hold_ok);
  EXPECT_NEAR(rep.elements[1].hold_slack, -2.0, 1e-9);
}

TEST(Hold, BoundaryIsExactlyZeroSlack) {
  const TimingReport rep = check_schedule(hold_circuit(4.0, 5.0), kSched, with_hold());
  EXPECT_TRUE(rep.hold_ok);
  EXPECT_NEAR(rep.elements[1].hold_slack, 0.0, 1e-9);
}

TEST(Hold, SkippedWhenNotRequested) {
  const TimingReport rep = check_schedule(hold_circuit(2.0, 5.0), kSched);
  EXPECT_TRUE(rep.hold_ok);  // not checked
  EXPECT_TRUE(std::isinf(rep.elements[1].hold_slack));
}

TEST(Hold, FlipFlopHoldAgainstLeadingEdge) {
  // Latch A(phi1) -> FF F(phi2). Requirement: Tc + a >= hold, where
  // a = d_A + dq_min + min_delay + S(1,2) = 1 + m - 50.
  Circuit c("ffhold", 2);
  Element a;
  a.name = "A";
  a.phase = 1;
  a.setup = 1.0;
  a.dq = 2.0;
  a.dq_min = 1.0;
  c.add_element(a);
  Element f;
  f.name = "F";
  f.kind = ElementKind::kFlipFlop;
  f.phase = 2;
  f.setup = 1.0;
  f.dq = 2.0;
  f.hold = 53.0;
  c.add_element(f);
  c.add_path("A", "F", 30.0, 4.0);
  // earliest next = 100 + (1+4-50) = 55; hold 53 -> slack 2.
  const TimingReport rep = check_schedule(c, kSched, with_hold());
  EXPECT_NEAR(rep.elements[1].hold_slack, 2.0, 1e-9);
  EXPECT_TRUE(rep.hold_ok);
}

TEST(Hold, EarlyDeparturesClampToPhaseStart) {
  // Early arrival before the phase opens departs at the opening edge (0).
  Circuit c("clamp", 2);
  Element a;
  a.name = "A";
  a.phase = 1;
  a.setup = 1.0;
  a.dq = 2.0;
  a.dq_min = 1.0;
  c.add_element(a);
  Element b;
  b.name = "B";
  b.phase = 2;
  b.setup = 1.0;
  b.dq = 2.0;
  b.dq_min = 1.0;
  c.add_element(b);
  Element d;
  d.name = "C";
  d.phase = 1;
  d.setup = 1.0;
  d.dq = 2.0;
  d.dq_min = 1.0;
  c.add_element(d);
  c.add_path("A", "B", 30.0, 2.0);
  c.add_path("B", "C", 30.0, 2.0);
  const FixpointResult early = compute_early_departures(c, kSched);
  ASSERT_TRUE(early.converged);
  EXPECT_DOUBLE_EQ(early.departure[0], 0.0);
  // At B: 0 + 1 + 2 - 50 < 0 -> clamps to 0.
  EXPECT_DOUBLE_EQ(early.departure[1], 0.0);
  EXPECT_DOUBLE_EQ(early.departure[2], 0.0);
}

TEST(Hold, EarlyDeparturesPropagateLateness) {
  // Long min delays push the early departure past the opening edge.
  Circuit c("late", 2);
  Element a;
  a.name = "A";
  a.phase = 1;
  a.setup = 1.0;
  a.dq = 2.0;
  a.dq_min = 2.0;
  c.add_element(a);
  Element b;
  b.name = "B";
  b.phase = 2;
  b.setup = 1.0;
  b.dq = 2.0;
  b.dq_min = 2.0;
  c.add_element(b);
  c.add_path("A", "B", 80.0, 60.0);
  const FixpointResult early = compute_early_departures(c, kSched);
  ASSERT_TRUE(early.converged);
  // 0 + 2 + 60 - 50 = 12.
  EXPECT_NEAR(early.departure[1], 12.0, 1e-9);
}

TEST(Hold, MinTakenOverMultipleFanins) {
  // Two fanin paths; the hold check must use the EARLIEST (minimum).
  Circuit c("fanin", 2);
  Element a1;
  a1.name = "A1";
  a1.phase = 1;
  a1.setup = 1.0;
  a1.dq = 2.0;
  a1.dq_min = 1.0;
  c.add_element(a1);
  Element a2 = a1;
  a2.name = "A2";
  c.add_element(a2);
  Element b;
  b.name = "B";
  b.phase = 2;
  b.setup = 1.0;
  b.dq = 2.0;
  b.hold = 5.0;
  c.add_element(b);
  c.add_path("A1", "B", 30.0, 20.0);  // earliest 100+1+20-50 = 71
  c.add_path("A2", "B", 30.0, 2.0);   // earliest 100+1+2-50  = 53  <- governs
  const TimingReport rep = check_schedule(c, kSched, with_hold());
  EXPECT_NEAR(rep.elements[2].hold_slack, 53.0 - 55.0, 1e-9);
  EXPECT_FALSE(rep.hold_ok);
}

}  // namespace
}  // namespace mintc::sta
