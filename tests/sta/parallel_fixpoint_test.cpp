// sta::ParallelFixpoint: SCC-parallel, SIMD-dispatched eq. (17) engine.
// The load-bearing property is BIT-identity with the scalar kSccOrdered
// scheme on convergent solves — these tests pin it on the paper circuits,
// plus the status semantics, engine wiring and kernel dispatch.
#include "sta/parallel_fixpoint.h"

#include <gtest/gtest.h>

#include "circuits/example1.h"
#include "circuits/example2.h"
#include "circuits/gaas.h"
#include "netlist/generators.h"
#include "opt/mlp.h"
#include "sta/analysis.h"
#include "sta/relax_kernel.h"
#include "sta/session.h"

namespace mintc::sta {
namespace {

std::vector<double> zeros(const Circuit& c) {
  return std::vector<double>(static_cast<size_t>(c.num_elements()), 0.0);
}

FixpointResult scalar_scc(const Circuit& c, const ClockSchedule& sch) {
  FixpointOptions fo;
  fo.scheme = UpdateScheme::kSccOrdered;
  return compute_departures(c, sch, zeros(c), fo);
}

TEST(ParallelFixpoint, BitIdenticalToScalarOnPaperCircuits) {
  for (const Circuit& c : {circuits::example1(120.0), circuits::example2(),
                           circuits::gaas_datapath()}) {
    const auto r = opt::minimize_cycle_time(c);
    ASSERT_TRUE(r) << c.name();
    const ClockSchedule sch = r->schedule.scaled(1.02);
    const FixpointResult ref = scalar_scc(c, sch);
    ASSERT_TRUE(ref.converged) << c.name();
    const TimingView view(c);
    const ShiftTable shifts(sch);
    for (const int threads : {1, 2, 4}) {
      for (const RelaxKernelKind kernel :
           {RelaxKernelKind::kScalar, RelaxKernelKind::kAuto}) {
        ParallelFixpointOptions po;
        po.num_threads = threads;
        po.kernel = kernel;
        ParallelFixpoint engine(view, po);
        const FixpointResult par = engine.solve(shifts, zeros(c));
        ASSERT_TRUE(par.converged) << c.name();
        EXPECT_EQ(par.status, FixpointStatus::kConverged);
        // Exact ==, not EXPECT_NEAR: bit-identity is the contract.
        EXPECT_EQ(par.departure, ref.departure)
            << c.name() << " threads=" << threads
            << " kernel=" << to_string(engine.kernel());
      }
    }
  }
}

TEST(ParallelFixpoint, SolverStatsArePopulated) {
  const Circuit c = circuits::example2();
  const TimingView view(c);
  const ShiftTable shifts(symmetric_schedule(c.num_phases(), 400.0));
  ParallelFixpointOptions po;
  po.num_threads = 2;
  ParallelFixpoint engine(view, po);
  const FixpointResult r = engine.solve(shifts, zeros(c));
  ASSERT_TRUE(r.converged);
  const ParallelSolveStats& st = engine.last_stats();
  EXPECT_EQ(st.sccs, engine.num_components());
  EXPECT_GT(st.sccs, 0);
  EXPECT_EQ(st.threads, 2);
  EXPECT_GE(st.tasks, 1);
  EXPECT_GE(st.max_shard_sweeps, 1);
  EXPECT_GT(r.updates, 0);
  EXPECT_GT(r.stats.edge_relaxations, 0);
}

TEST(ParallelFixpoint, EngineIsReusableAcrossSchedules) {
  // One partition, many solves — the session usage pattern.
  const Circuit c = circuits::example2();
  const TimingView view(c);
  ParallelFixpointOptions po;
  po.num_threads = 2;
  ParallelFixpoint engine(view, po);
  for (const double tc : {350.0, 400.0, 500.0}) {
    const ShiftTable shifts(symmetric_schedule(c.num_phases(), tc));
    const FixpointResult par = engine.solve(shifts, zeros(c));
    FixpointOptions fo;
    fo.scheme = UpdateScheme::kSccOrdered;
    const FixpointResult ref = compute_departures(view, shifts, zeros(c), fo);
    EXPECT_EQ(par.converged, ref.converged) << tc;
    if (ref.converged) {
      EXPECT_EQ(par.departure, ref.departure) << tc;
    }
  }
}

TEST(ParallelFixpoint, DivergenceVerdictMatchesScalar) {
  Circuit c("race", 1);
  c.add_latch("A", 1, 1.0, 2.0);
  c.add_latch("B", 1, 1.0, 2.0);
  c.add_path("A", "B", 30.0);
  c.add_path("B", "A", 30.0);
  const ClockSchedule sch(10.0, {0.0}, {10.0});
  const FixpointResult ref = scalar_scc(c, sch);
  ASSERT_TRUE(ref.diverged);
  const TimingView view(c);
  const ShiftTable shifts(sch);
  for (const int threads : {1, 4}) {
    ParallelFixpointOptions po;
    po.num_threads = threads;
    const FixpointResult par = compute_departures_parallel(view, shifts, zeros(c), po);
    EXPECT_TRUE(par.diverged) << threads;
    EXPECT_EQ(par.status, FixpointStatus::kDiverged) << threads;
    EXPECT_FALSE(par.converged) << threads;
  }
}

TEST(ParallelFixpoint, SweepLimitStatusCarriesResidual) {
  // A convergent ring that needs ~l sweeps (the +5 chain runs against member
  // order, so each sweep advances one hop), starved to a 1-sweep budget.
  Circuit c("slow_ring", 2);
  const int l = 8;
  for (int i = 0; i < l; ++i) {
    c.add_latch("n" + std::to_string(i), (i % 2) + 1, 1.0, 2.0);
  }
  for (int i = 1; i < l; ++i) c.add_path(i, i - 1, 53.0);
  c.add_path(0, l - 1, 0.0);
  const ClockSchedule sch = symmetric_schedule(2, 100.0);
  ParallelFixpointOptions po;
  po.num_threads = 2;
  po.fixpoint.max_sweeps = 1;  // starve the ring
  const TimingView view(c);
  const FixpointResult par =
      compute_departures_parallel(view, ShiftTable(sch), zeros(c), po);
  EXPECT_FALSE(par.converged);
  EXPECT_FALSE(par.diverged);
  EXPECT_EQ(par.status, FixpointStatus::kSweepLimit);
  EXPECT_GT(par.residual, 0.0);
}

TEST(ParallelFixpoint, CheckScheduleHonorsNumThreads) {
  const Circuit c = circuits::example2();
  const ClockSchedule sch = symmetric_schedule(c.num_phases(), 400.0);
  AnalysisOptions scalar_opt;
  scalar_opt.check_hold = true;
  const TimingReport ref = check_schedule(c, sch, scalar_opt);
  AnalysisOptions par_opt = scalar_opt;
  par_opt.num_threads = 2;
  // The scalar default scheme is Gauss-Seidel; route the reference through
  // kSccOrdered so the comparison isolates the engine, not the scheme.
  // (All schemes converge to the same fixpoint; the parallel engine is
  // bitwise equal to kSccOrdered specifically.)
  AnalysisOptions scc_opt = scalar_opt;
  scc_opt.fixpoint.scheme = UpdateScheme::kSccOrdered;
  const TimingReport scc_ref = check_schedule(c, sch, scc_opt);
  const TimingReport par = check_schedule(c, sch, par_opt);
  ASSERT_TRUE(par.converged);
  EXPECT_EQ(par.feasible, ref.feasible);
  EXPECT_EQ(par.fixpoint.departure, scc_ref.fixpoint.departure);
}

TEST(ParallelFixpoint, SessionColdSolveUsesParallelEngine) {
  const Circuit c = circuits::example2();
  const ClockSchedule sch = symmetric_schedule(c.num_phases(), 400.0);
  AnalysisOptions opt;
  opt.num_threads = 2;
  opt.fixpoint.scheme = UpdateScheme::kSccOrdered;
  AnalysisSession session(c, sch, opt);
  const TimingReport& warm = session.analyze();
  AnalysisOptions scalar_opt;
  scalar_opt.fixpoint.scheme = UpdateScheme::kSccOrdered;
  const TimingReport ref = check_schedule(c, sch, scalar_opt);
  EXPECT_EQ(warm.feasible, ref.feasible);
  EXPECT_EQ(warm.fixpoint.departure, ref.fixpoint.departure);
}

TEST(RelaxKernel, RunMaxMatchesScalarLoop) {
  // Direct kernel-level check across run lengths covering the SIMD main
  // loop, the tail and the empty run.
  const Circuit c = circuits::gaas_datapath();
  const TimingView view(c);
  const ShiftTable shifts(symmetric_schedule(c.num_phases(), 400.0));
  std::vector<double> departure(static_cast<size_t>(c.num_elements()));
  for (size_t i = 0; i < departure.size(); ++i) {
    departure[i] = 0.37 * static_cast<double>(i % 17);
  }
  const RelaxRunFn scalar = relax_run_fn(RelaxKernelKind::kScalar);
  const RelaxRunFn fast = relax_run_fn(RelaxKernelKind::kAuto);
  for (int i = 0; i < c.num_elements(); ++i) {
    const double a = relax_element(scalar, view, shifts, departure, i);
    const double b = relax_element(fast, view, shifts, departure, i);
    EXPECT_EQ(a, b) << c.element(i).name;  // bitwise, not approx
  }
}

TEST(RelaxKernel, ResolveNeverReturnsAuto) {
  const RelaxKernelKind resolved = resolve_relax_kernel(RelaxKernelKind::kAuto);
  EXPECT_NE(resolved, RelaxKernelKind::kAuto);
  EXPECT_EQ(resolve_relax_kernel(RelaxKernelKind::kScalar), RelaxKernelKind::kScalar);
}

}  // namespace
}  // namespace mintc::sta
