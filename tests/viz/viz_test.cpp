#include <gtest/gtest.h>

#include "circuits/example1.h"
#include "opt/mlp.h"
#include "viz/svg.h"
#include "viz/timing_diagram.h"

namespace mintc::viz {
namespace {

struct Solved {
  Circuit circuit;
  ClockSchedule schedule;
  std::vector<double> departure;
};

Solved solved_example1() {
  Circuit c = circuits::example1(80.0);
  const auto r = opt::minimize_cycle_time(c);
  EXPECT_TRUE(r.has_value());
  return {std::move(c), r->schedule, r->departure};
}

TEST(AsciiClock, OneRowPerPhasePlusRuler) {
  const Solved s = solved_example1();
  const std::string d = ascii_clock_diagram(s.schedule);
  EXPECT_NE(d.find("phi1"), std::string::npos);
  EXPECT_NE(d.find("phi2"), std::string::npos);
  EXPECT_NE(d.find("Tc = 110"), std::string::npos);
  EXPECT_NE(d.find('#'), std::string::npos);  // active intervals
  EXPECT_NE(d.find('_'), std::string::npos);  // passive intervals
}

TEST(AsciiClock, ActiveFractionRoughlyMatchesDuty) {
  // phi1 is 80/110 of the cycle: around 73% of its row should be '#'.
  DiagramOptions opt;
  opt.columns = 110;
  opt.cycles = 1;
  const ClockSchedule sch(110.0, {0.0, 80.0}, {80.0, 30.0});
  const std::string d = ascii_clock_diagram(sch, opt);
  const size_t line_end = d.find('\n');
  const std::string row = d.substr(0, line_end);
  const long hashes = std::count(row.begin(), row.end(), '#');
  EXPECT_NEAR(static_cast<double>(hashes), 80.0, 3.0);
}

TEST(AsciiTiming, StripsForEveryElement) {
  const Solved s = solved_example1();
  const std::string d = ascii_timing_diagram(s.circuit, s.schedule, s.departure);
  for (const Element& e : s.circuit.elements()) {
    EXPECT_NE(d.find(e.name), std::string::npos);
  }
  EXPECT_NE(d.find('X'), std::string::npos);  // latch delay shading
  EXPECT_NE(d.find('='), std::string::npos);  // combinational span
  EXPECT_NE(d.find("departure"), std::string::npos);  // legend
}

TEST(AsciiTiming, WaitGapShownForEarlyArrivals) {
  // At Δ41=120 the paper notes L3's input arrives 20 ns before phi1 rises:
  // the L3 strip must show a wait gap ('.').
  Circuit c = circuits::example1(120.0);
  const auto r = opt::minimize_cycle_time(c);
  ASSERT_TRUE(r.has_value());
  const std::string d = ascii_timing_diagram(c, r->schedule, r->departure);
  EXPECT_NE(d.find('.'), std::string::npos);
}

TEST(AsciiTiming, EmptyScheduleHandled) {
  Circuit c("empty", 1);
  const ClockSchedule sch(0.0, {0.0}, {0.0});
  const std::string d = ascii_timing_diagram(c, sch, {});
  EXPECT_NE(d.find("empty schedule"), std::string::npos);
}

TEST(DepartureSummary, PaperStyle) {
  const Solved s = solved_example1();
  const std::string d = departure_summary(s.circuit, s.departure);
  EXPECT_NE(d.find("D(L1)="), std::string::npos);
  EXPECT_NE(d.find("D(L4)="), std::string::npos);
}

TEST(Svg, WellFormedDocument) {
  const Solved s = solved_example1();
  const std::string svg = svg_timing_diagram(s.circuit, s.schedule, s.departure);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One label per phase and per element.
  EXPECT_NE(svg.find(">phi1<"), std::string::npos);
  EXPECT_NE(svg.find(">L4<"), std::string::npos);
  // Balanced rect count: at least phases * cycles rects.
  size_t rects = 0;
  for (size_t p = svg.find("<rect"); p != std::string::npos; p = svg.find("<rect", p + 1)) {
    ++rects;
  }
  EXPECT_GE(rects, 8u);
}

TEST(Svg, DegenerateScheduleStillValid) {
  Circuit c("empty", 1);
  const std::string svg = svg_timing_diagram(c, ClockSchedule(0.0, {0.0}, {0.0}), {});
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace mintc::viz
