#include "viz/dot.h"

#include <gtest/gtest.h>

#include "circuits/example1.h"
#include "circuits/gaas.h"
#include "opt/critical.h"
#include "opt/mlp.h"

namespace mintc::viz {
namespace {

TEST(Dot, BasicStructure) {
  const std::string dot = dot_circuit(circuits::example1(80.0));
  EXPECT_EQ(dot.rfind("digraph", 0), 0u);
  EXPECT_NE(dot.find("\"L1\" [shape=box"), std::string::npos);
  EXPECT_NE(dot.find("\"L4\" -> \"L1\""), std::string::npos);
  EXPECT_NE(dot.find("Ld: 80"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Dot, FlipFlopsGetDistinctShape) {
  const std::string dot = dot_circuit(circuits::gaas_datapath());
  EXPECT_NE(dot.find("\"PC\" [shape=doubleoctagon"), std::string::npos);
  EXPECT_NE(dot.find("\"IR\" [shape=box"), std::string::npos);
}

TEST(Dot, HighlightsCriticalPaths) {
  const Circuit c = circuits::example1(80.0);
  const auto r = opt::minimize_cycle_time(c);
  ASSERT_TRUE(r.has_value());
  const opt::CriticalReport rep = opt::find_critical_segments(c, r->schedule, r->departure);
  DotOptions opt;
  opt.highlight_paths = rep.tight_paths;
  const std::string dot = dot_circuit(c, opt);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(Dot, DelaysCanBeHidden) {
  DotOptions opt;
  opt.show_delays = false;
  const std::string dot = dot_circuit(circuits::example1(80.0), opt);
  EXPECT_EQ(dot.find("label=\"La"), std::string::npos);
}

}  // namespace
}  // namespace mintc::viz
